#include "cloud/cloud.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/env.hpp"
#include "obs/phases.hpp"
#include "obs/selfprof.hpp"
#include "sim/causal.hpp"
#include "sim/sync.hpp"

namespace vmstorm::cloud {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kPrepropagation: return "taktuk pre-propagation";
    case Strategy::kQcowOverPvfs: return "qcow2 over PVFS";
    case Strategy::kOurs: return "our approach";
  }
  return "?";
}

Cloud::Cloud(CloudConfig cfg, Strategy strategy)
    : cfg_(cfg), strategy_(strategy) {
  // Attach the recorder before any component exists: components cache their
  // metric handles at construction time.
  engine_.set_recorder(&obs_);
  if (const char* env = common::env_or("VMSTORM_TRACE")) {
    if (std::strcmp(env, "0") != 0) obs_.trace.set_enabled(true);
  }
  // Trace-volume knobs. VMSTORM_TRACE_RING bounds the retained event count
  // (ring overwrites the oldest past it); VMSTORM_TRACE_SAMPLE in [0,1]
  // keeps that fraction of root span trees, seeded from cfg.seed so the
  // decision is reproducible per seed.
  if (const char* env = common::env_or("VMSTORM_TRACE_RING")) {
    const unsigned long long cap = std::strtoull(env, nullptr, 10);
    if (cap > 0) obs_.trace.set_ring_capacity(static_cast<std::size_t>(cap));
  }
  if (const char* env = common::env_or("VMSTORM_TRACE_SAMPLE")) {
    obs_.trace.set_sampling(std::strtod(env, nullptr), cfg_.seed);
  }
  build_testbed();
  upload_image();
  // Timeline knobs mirror the trace ones: VMSTORM_TIMELINE=1 turns the
  // sampler on, VMSTORM_TIMELINE_CADENCE (simulated seconds) overrides the
  // sampling interval.
  if (const char* env = common::env_or("VMSTORM_TIMELINE")) {
    if (std::strcmp(env, "0") != 0) {
      obs::TimelineConfig tc;
      if (const char* cad = common::env_or("VMSTORM_TIMELINE_CADENCE")) {
        const double v = std::strtod(cad, nullptr);
        if (v > 0) tc.cadence_seconds = v;
      }
      enable_timeline(tc);
    }
  }
}

Cloud::~Cloud() = default;

void Cloud::build_testbed() {
  // Node layout: [0, N)               compute nodes (repository providers)
  //              [N, 2N)              fresh compute nodes for resume
  //              2N                   NFS server
  //              2N + 1               version/cloud manager
  const std::size_t n = cfg_.compute_nodes;
  network_ = std::make_unique<net::Network>(engine_, 2 * n + 2, cfg_.network);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    disks_.push_back(std::make_unique<storage::Disk>(engine_, cfg_.disk));
    disks_.back()->set_trace_lane(static_cast<std::uint32_t>(i));
    compute_nodes_.push_back(static_cast<net::NodeId>(i));
  }
  nfs_disk_ = std::make_unique<storage::Disk>(engine_, cfg_.disk);
  nfs_disk_->set_trace_lane(static_cast<std::uint32_t>(2 * n));
  nfs_node_ = static_cast<net::NodeId>(2 * n);
  manager_node_ = static_cast<net::NodeId>(2 * n + 1);
  next_fresh_node_ = n;
}

void Cloud::upload_image() {
  const std::size_t n = cfg_.compute_nodes;
  switch (strategy_) {
    case Strategy::kOurs: {
      blob::StoreConfig sc;
      sc.providers = n;
      sc.replication = cfg_.replication;
      sc.dedup = cfg_.dedup;
      sc.seed = cfg_.seed;
      store_ = std::make_unique<blob::BlobStore>(sc);
      std::vector<net::NodeId> provider_nodes(compute_nodes_.begin(),
                                              compute_nodes_.begin() + n);
      std::vector<storage::Disk*> provider_disks;
      for (std::size_t i = 0; i < n; ++i) provider_disks.push_back(disks_[i].get());
      cluster_ = std::make_unique<blob::SimCluster>(
          engine_, *network_, *store_, provider_nodes, provider_disks,
          manager_node_);
      auto blob = store_->create(cfg_.image_size, cfg_.chunk_size);
      if (!blob.is_ok()) throw std::runtime_error(blob.status().to_string());
      image_blob_ = blob.value();
      auto v = store_->write_pattern(image_blob_, 0, 0, cfg_.image_size, cfg_.seed);
      if (!v.is_ok()) throw std::runtime_error(v.status().to_string());
      break;
    }
    case Strategy::kQcowOverPvfs: {
      fs_ = std::make_unique<dfs::StripedFs>(n, cfg_.chunk_size);
      std::vector<net::NodeId> server_nodes(compute_nodes_.begin(),
                                            compute_nodes_.begin() + n);
      std::vector<storage::Disk*> server_disks;
      for (std::size_t i = 0; i < n; ++i) server_disks.push_back(disks_[i].get());
      sim_dfs_ = std::make_unique<dfs::SimDfs>(engine_, *network_, *fs_,
                                               server_nodes, server_disks);
      auto file = fs_->create("base.raw");
      if (!file.is_ok()) throw std::runtime_error(file.status().to_string());
      backing_file_ = file.value();
      Status st = fs_->write_pattern(backing_file_, 0, cfg_.image_size, cfg_.seed);
      if (!st.is_ok()) throw std::runtime_error(st.to_string());
      break;
    }
    case Strategy::kPrepropagation:
      // Image lives on the NFS server; nothing to pre-stage.
      break;
  }
}

std::unique_ptr<Cloud::Instance> Cloud::make_instance(std::size_t node_index,
                                                      std::uint64_t salt) {
  auto inst = std::make_unique<Instance>();
  inst->node_index = node_index;
  storage::Disk& local = *disks_.at(node_index);
  const net::NodeId node = compute_nodes_.at(node_index);
  switch (strategy_) {
    case Strategy::kOurs: {
      mirror::MirrorConfig mc;
      mc.image_size = cfg_.image_size;
      mc.chunk_size = cfg_.chunk_size;
      mc.prefetch_whole_chunks = cfg_.mirror_prefetch_whole_chunks;
      mc.single_region_per_chunk = cfg_.mirror_single_region_per_chunk;
      inst->ours = std::make_unique<mirror::SimVirtualDisk>(
          *cluster_, node, local, image_blob_, 1, mc, salt);
      inst->ours->set_commit_shared_fraction(cfg_.snapshot_shared_fraction);
      inst->vmdisk = std::make_unique<vm::MirrorVmDisk>(*inst->ours);
      break;
    }
    case Strategy::kQcowOverPvfs:
      inst->qcow = std::make_unique<qcow::SimImage>(
          *sim_dfs_, backing_file_, local, node, cfg_.image_size,
          cfg_.qcow_cluster_size, salt);
      inst->vmdisk = std::make_unique<vm::QcowVmDisk>(*inst->qcow);
      break;
    case Strategy::kPrepropagation:
      inst->vmdisk = std::make_unique<vm::LocalVmDisk>(local, salt);
      break;
  }
  return inst;
}

MultideployMetrics Cloud::multideploy(std::size_t n,
                                      const vm::BootTraceParams& tp,
                                      vm::BootParams bp) {
  assert(n >= 1 && n <= cfg_.compute_nodes);
  MultideployMetrics m;
  const Bytes traffic0 = network_->total_traffic();
  const double t0 = engine_.now_seconds();

  // Phase span: allocated before any child spawns so every coroutine of
  // this deployment inherits it (or a descendant) as parent.
  obs::Tracer* tr = sim::live_tracer(engine_);
  std::uint64_t phase_span = 0;
  if (tr) {
    phase_span = tr->new_span();
    engine_.set_current_span(phase_span);
  }

  // Initialization phase (prepropagation only): broadcast the raw image.
  if (strategy_ == Strategy::kPrepropagation) {
    std::vector<net::NodeId> targets(compute_nodes_.begin(),
                                     compute_nodes_.begin() + n);
    std::vector<storage::Disk*> tdisks;
    for (std::size_t i = 0; i < n; ++i) tdisks.push_back(disks_[i].get());
    bcast::BroadcastResult br;
    engine_.spawn(bcast::broadcast(engine_, *network_, nfs_node_, *nfs_disk_,
                                   targets, tdisks, cfg_.image_size,
                                   cfg_.broadcast, &br));
    run_engine();
    m.broadcast_seconds = engine_.now_seconds() - t0;
  }

  // Instantiate and boot all VMs concurrently.
  instances_.clear();
  const vm::BootTrace trace = vm::BootTrace::generate(tp, cfg_.seed);
  Rng root(cfg_.seed ^ 0xb007b007ull);
  for (std::size_t i = 0; i < n; ++i) {
    instances_.push_back(make_instance(i, next_salt_++));
  }
  for (std::size_t i = 0; i < n; ++i) {
    vm::BootParams bpi = bp;
    bpi.trace_lane = static_cast<std::uint32_t>(i);
    bpi.trace_instance = i;
    bpi.trace_kind = "boot";
    engine_.spawn(vm::run_boot(engine_, *instances_[i]->vmdisk, trace,
                               root.fork(i), bpi, &instances_[i]->boot));
    if (strategy_ == Strategy::kOurs && cfg_.prefetch_window > 0 &&
        !prefetch_profile_.empty()) {
      engine_.spawn(
          instances_[i]->ours->prefetch(prefetch_profile_, cfg_.prefetch_window));
    }
  }
  run_engine();

  for (auto& inst : instances_) m.boot_seconds.add(inst->boot.boot_seconds());
  // Completion = the slowest instance's boot, from phase start — what the
  // user perceives. (engine.run() also drained background disk flushers;
  // those are not part of the deployment's readiness.)
  double last = t0;
  for (auto& inst : instances_) last = std::max(last, inst->boot.finished);
  m.completion_seconds = last - t0;
  m.network_traffic = network_->total_traffic() - traffic0;
  if (tr) {
    // Per-instance attribution comes from the vm/boot root spans; the phase
    // span only groups them in the chrome view.
    tr->complete_span(t0, m.completion_seconds, 0, "cloud", "multideploy",
                      phase_span, 0, {obs::TraceArg::uint("instances", n)});
    engine_.set_current_span(0);
  }
  return m;
}

sim::Task<void> Cloud::snapshot_one(Instance& inst, double started,
                                    double* finished) {
  // Root span for this snapshot: the analyzer attributes [started, finished]
  // of each instance's snapshot against it.
  obs::Tracer* tr = sim::live_tracer(engine_);
  const std::uint64_t parent = engine_.current_span();
  std::uint64_t span = 0;
  if (tr) {
    span = tr->new_span(parent);
    engine_.set_current_span(span);
  }
  switch (strategy_) {
    case Strategy::kOurs: {
      if (!inst.cloned) {
        co_await inst.ours->clone();
        inst.cloned = true;
      }
      co_await inst.ours->commit();
      break;
    }
    case Strategy::kQcowOverPvfs: {
      // Parallel copy of the local qcow2 file back to PVFS.
      const Bytes host_bytes = inst.qcow->host_file_bytes();
      const std::string name =
          "snap_" + std::to_string(inst.node_index) + "_" +
          std::to_string(engine_.now());
      auto file = fs_->create(name);
      if (!file.is_ok()) throw std::runtime_error(file.status().to_string());
      inst.snapshot_file = *file;
      // Local file is page-cache hot (just written); the cost is the push.
      co_await sim_dfs_->write(compute_nodes_[inst.node_index], *file, 0,
                               host_bytes);
      Status st = fs_->write_pattern(*file, 0, host_bytes, 0xdead);
      if (!st.is_ok()) throw std::runtime_error(st.to_string());
      break;
    }
    case Strategy::kPrepropagation:
      break;
  }
  *finished = engine_.now_seconds();
  if (tr) {
    tr->complete_span(started, *finished - started,
                      static_cast<std::uint32_t>(inst.node_index), "cloud",
                      "snapshot", span, parent,
                      {obs::TraceArg::uint("instance", inst.node_index)});
    engine_.set_current_span(parent);
  }
}

Result<MultisnapshotMetrics> Cloud::multisnapshot() {
  if (strategy_ == Strategy::kPrepropagation) {
    return failed_precondition(
        "multisnapshotting full raw images back to NFS is infeasible (§5.3)");
  }
  if (instances_.empty()) return failed_precondition("no running instances");
  MultisnapshotMetrics m;
  const Bytes traffic0 = network_->total_traffic();
  const Bytes repo0 = repository_bytes();
  const double t0 = engine_.now_seconds();
  obs::Tracer* tr = sim::live_tracer(engine_);
  std::uint64_t phase_span = 0;
  if (tr) {
    phase_span = tr->new_span();
    engine_.set_current_span(phase_span);
  }
  std::vector<double> finished(instances_.size(), 0.0);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    engine_.spawn(snapshot_one(*instances_[i], t0, &finished[i]));
  }
  run_engine();
  double last = t0;
  for (double f : finished) {
    m.snapshot_seconds.add(f - t0);
    last = std::max(last, f);
  }
  m.completion_seconds = last - t0;
  m.network_traffic = network_->total_traffic() - traffic0;
  m.repository_growth = repository_bytes() - repo0;
  if (tr) {
    tr->complete_span(t0, m.completion_seconds, 0, "cloud", "multisnapshot",
                      phase_span, 0,
                      {obs::TraceArg::uint("instances", instances_.size())});
    engine_.set_current_span(0);
  }
  return m;
}

namespace {
sim::Task<void> copy_snapshot_to_node(Cloud* cloud, dfs::SimDfs* dfs,
                                      dfs::FileId file, net::NodeId node,
                                      storage::Disk* disk, Bytes bytes) {
  (void)cloud;
  co_await dfs->read(node, file, 0, bytes);
  co_await disk->write_async(bytes);
}
}  // namespace

Result<MultideployMetrics> Cloud::resume_boot(const vm::BootTraceParams& tp,
                                              vm::BootParams bp) {
  if (instances_.empty()) return failed_precondition("nothing to resume");
  if (next_fresh_node_ + instances_.size() > disks_.size()) {
    return resource_exhausted("not enough fresh nodes to resume on");
  }
  MultideployMetrics m;
  const Bytes traffic0 = network_->total_traffic();
  const double t0 = engine_.now_seconds();

  obs::Tracer* tr = sim::live_tracer(engine_);
  std::uint64_t phase_span = 0;
  if (tr) {
    phase_span = tr->new_span();
    engine_.set_current_span(phase_span);
  }

  std::vector<std::unique_ptr<Instance>> resumed;
  const vm::BootTrace trace = vm::BootTrace::generate(tp, cfg_.seed ^ 0x5e5);
  Rng root(cfg_.seed ^ 0x4e5043ull);

  // Stage 1 (qcow2 only): pull each snapshot file onto its fresh node.
  if (strategy_ == Strategy::kQcowOverPvfs) {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      const std::size_t fresh = next_fresh_node_ + i;
      engine_.spawn(copy_snapshot_to_node(
          this, sim_dfs_.get(), instances_[i]->snapshot_file,
          compute_nodes_[fresh], disks_[fresh].get(),
          instances_[i]->qcow->host_file_bytes()));
    }
    run_engine();
  }

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const std::size_t fresh = next_fresh_node_ + i;
    auto inst = std::make_unique<Instance>();
    inst->node_index = fresh;
    storage::Disk& local = *disks_[fresh];
    const net::NodeId node = compute_nodes_[fresh];
    switch (strategy_) {
      case Strategy::kOurs: {
        if (!instances_[i]->cloned) {
          return failed_precondition("resume requires a prior multisnapshot");
        }
        mirror::MirrorConfig mc;
        mc.image_size = cfg_.image_size;
        mc.chunk_size = cfg_.chunk_size;
        mc.prefetch_whole_chunks = cfg_.mirror_prefetch_whole_chunks;
        mc.single_region_per_chunk = cfg_.mirror_single_region_per_chunk;
        inst->ours = std::make_unique<mirror::SimVirtualDisk>(
            *cluster_, node, local, instances_[i]->ours->target_blob(),
            instances_[i]->ours->target_version(), mc, next_salt_++);
        inst->vmdisk = std::make_unique<vm::MirrorVmDisk>(*inst->ours);
        inst->cloned = true;
        break;
      }
      case Strategy::kQcowOverPvfs: {
        inst->qcow = std::make_unique<qcow::SimImage>(
            *sim_dfs_, backing_file_, local, node, cfg_.image_size,
            cfg_.qcow_cluster_size, next_salt_++);
        inst->qcow->adopt_allocation(*instances_[i]->qcow);
        inst->snapshot_file = instances_[i]->snapshot_file;
        inst->vmdisk = std::make_unique<vm::QcowVmDisk>(*inst->qcow);
        break;
      }
      case Strategy::kPrepropagation:
        return failed_precondition("prepropagation cannot resume");
    }
    resumed.push_back(std::move(inst));
  }
  next_fresh_node_ += instances_.size();

  for (std::size_t i = 0; i < resumed.size(); ++i) {
    vm::BootParams bpi = bp;
    bpi.trace_lane = static_cast<std::uint32_t>(resumed[i]->node_index);
    bpi.trace_instance = i;
    bpi.trace_kind = "resume";
    engine_.spawn(vm::run_boot(engine_, *resumed[i]->vmdisk, trace,
                               root.fork(i), bpi, &resumed[i]->boot));
  }
  run_engine();
  instances_ = std::move(resumed);

  for (auto& inst : instances_) m.boot_seconds.add(inst->boot.boot_seconds());
  double last = t0;
  for (auto& inst : instances_) last = std::max(last, inst->boot.finished);
  m.completion_seconds = last - t0;
  m.network_traffic = network_->total_traffic() - traffic0;
  if (tr) {
    tr->complete_span(t0, m.completion_seconds, 0, "cloud", "resume_boot",
                      phase_span, 0,
                      {obs::TraceArg::uint("instances", instances_.size())});
    engine_.set_current_span(0);
  }
  return m;
}

namespace {
sim::Task<void> app_phase_one(sim::Engine* engine, vm::VmDisk* disk,
                              double cpu_seconds, Bytes write_bytes,
                              std::size_t write_ops, Rng rng,
                              Bytes image_size) {
  const std::size_t steps = write_ops == 0 ? 1 : write_ops;
  const Bytes per_write = write_bytes / steps;
  const Bytes band_lo = image_size / 2;
  const Bytes band = image_size / 4;
  for (std::size_t s = 0; s < steps; ++s) {
    const double jitter = 0.9 + 0.2 * rng.uniform_double();
    co_await engine->sleep_seconds(cpu_seconds / steps * jitter);
    if (per_write > 0) {
      Bytes off = band_lo + rng.uniform_u64(band - per_write);
      off &= ~(4_KiB - 1);
      co_await disk->write(off, per_write);
    }
  }
}
}  // namespace

double Cloud::run_app_phase(double cpu_seconds, Bytes write_bytes,
                            std::size_t write_ops) {
  const double t0 = engine_.now_seconds();
  Rng root(cfg_.seed ^ 0xa44ull);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    engine_.spawn(app_phase_one(&engine_, instances_[i]->vmdisk.get(),
                                cpu_seconds, write_bytes, write_ops,
                                root.fork(i), cfg_.image_size));
  }
  run_engine();
  return engine_.now_seconds() - t0;
}

Result<mirror::AccessProfile> Cloud::access_profile_of(
    std::size_t instance) const {
  if (instance >= instances_.size()) return out_of_range("instance index");
  if (strategy_ != Strategy::kOurs || !instances_[instance]->ours) {
    return failed_precondition("access profiles exist for kOurs only");
  }
  return instances_[instance]->ours->access_profile();
}

Bytes Cloud::repository_bytes() const {
  switch (strategy_) {
    case Strategy::kOurs: return store_->stored_bytes();
    case Strategy::kQcowOverPvfs: return fs_->stored_bytes();
    case Strategy::kPrepropagation: return cfg_.image_size;
  }
  return 0;
}

// ---- Timeline sampling ------------------------------------------------------

void Cloud::enable_timeline(obs::TimelineConfig cfg) {
  obs_.timeline.configure(cfg);
  obs_.timeline.set_enabled(true);
  tlp_ = TimelineProbe{};
}

storage::Disk& Cloud::repo_disk(std::size_t i) {
  // Repository role: the blob providers / DFS servers (first N compute
  // disks) for ours/qcow; the NFS server disk for prepropagation.
  if (strategy_ == Strategy::kPrepropagation) return *nfs_disk_;
  return *disks_[i];
}

void Cloud::setup_timeline() {
  obs::Timeline& tl = obs_.timeline;
  const std::size_t n = cfg_.compute_nodes;
  tlp_.repo_disks = strategy_ == Strategy::kPrepropagation ? 1 : n;
  tlp_.labeled = strategy_ == Strategy::kPrepropagation
                     ? 0
                     : std::min(n, tl.config().max_labeled_providers);
  tlp_.has_mirror = strategy_ == Strategy::kOurs;

  tlp_.net_tp = tl.add_series("net.throughput_bytes_per_sec");
  tlp_.net_payload = tl.add_series("net.payload_bytes_per_sec");
  tlp_.util_net = tl.add_series("util.network");
  tlp_.util_repo = tl.add_series("util.repo_disk");
  tlp_.util_local = tl.add_series("util.local_disk");
  tlp_.sim_queue = tl.add_series("sim.queue_depth");
  tlp_.sim_tasks = tl.add_series("sim.live_tasks");
  tlp_.repo_growth = tl.add_series("repo.stored_bytes_per_sec");
  tlp_.imbalance = tl.add_series("provider.imbalance");
  tlp_.qd_mean = tl.add_series("provider.queue_depth_mean");
  tlp_.qd_max = tl.add_series("provider.queue_depth_max");
  if (tlp_.has_mirror) {
    tlp_.mirror_inflight = tl.add_series("mirror.bytes_in_flight");
  }
  for (std::size_t i = 0; i < tlp_.labeled; ++i) {
    const obs::TimelineLabels labels{{"provider", std::to_string(i)}};
    tlp_.p_qd.push_back(tl.add_series("provider.queue_depth", labels));
    tlp_.p_util.push_back(tl.add_series("provider.util", labels));
    tlp_.p_hit.push_back(tl.add_series("provider.cache_hit_rate", labels));
    tlp_.p_nic.push_back(tl.add_series("provider.nic_util", labels));
  }

  // Seed the delta baselines from current component state, so a timeline
  // enabled mid-run does not book all prior traffic into its first sample.
  tlp_.prev_traffic = static_cast<double>(network_->total_traffic());
  tlp_.prev_payload = static_cast<double>(network_->total_payload());
  tlp_.prev_stored = static_cast<double>(repository_bytes());
  double nic_busy_all = 0;
  for (std::size_t i = 0; i < network_->node_count(); ++i) {
    net::NetNode& nd = network_->node(static_cast<net::NodeId>(i));
    nic_busy_all += sim::to_seconds(nd.tx().busy_time()) +
                    sim::to_seconds(nd.rx().busy_time());
  }
  tlp_.prev_nic_busy_all = nic_busy_all;
  tlp_.prev_busy.assign(tlp_.repo_disks, 0.0);
  tlp_.prev_hits.assign(tlp_.repo_disks, 0.0);
  tlp_.prev_misses.assign(tlp_.repo_disks, 0.0);
  for (std::size_t i = 0; i < tlp_.repo_disks; ++i) {
    storage::Disk& d = repo_disk(i);
    tlp_.prev_busy[i] = sim::to_seconds(d.busy_time());
    tlp_.prev_hits[i] = static_cast<double>(d.cache_hits());
    tlp_.prev_misses[i] = static_cast<double>(d.cache_misses());
  }
  tlp_.prev_nic.assign(tlp_.labeled, 0.0);
  for (std::size_t i = 0; i < tlp_.labeled; ++i) {
    net::NetNode& nd = network_->node(compute_nodes_[i]);
    tlp_.prev_nic[i] = sim::to_seconds(nd.tx().busy_time()) +
                       sim::to_seconds(nd.rx().busy_time());
  }
  tlp_.last_t = engine_.now_seconds();
  tlp_.ready = true;
}

void Cloud::sample_timeline() {
  obs::Timeline& tl = obs_.timeline;
  const double t = engine_.now_seconds();
  const double dt = t - tlp_.last_t;
  if (dt <= 0) return;  // same-instant duplicate wakeup
  tlp_.last_t = t;
  tl.begin_sample(t);
  const auto as_d = [](auto v) { return static_cast<double>(v); };

  // Network aggregates: wire throughput and mean NIC busy fraction.
  const double traffic = as_d(network_->total_traffic());
  tl.record(tlp_.net_tp, (traffic - tlp_.prev_traffic) / dt);
  tlp_.prev_traffic = traffic;
  const double payload = as_d(network_->total_payload());
  tl.record(tlp_.net_payload, (payload - tlp_.prev_payload) / dt);
  tlp_.prev_payload = payload;
  double nic_busy_all = 0;
  const std::size_t nodes = network_->node_count();
  for (std::size_t i = 0; i < nodes; ++i) {
    net::NetNode& nd = network_->node(static_cast<net::NodeId>(i));
    nic_busy_all += sim::to_seconds(nd.tx().busy_time()) +
                    sim::to_seconds(nd.rx().busy_time());
  }
  tl.record(tlp_.util_net,
            nodes > 0 ? (nic_busy_all - tlp_.prev_nic_busy_all) /
                            (2.0 * as_d(nodes) * dt)
                      : 0.0);
  tlp_.prev_nic_busy_all = nic_busy_all;

  // Repository disks: mean busy fraction, queue depth, and skew. Labeled
  // providers additionally record their own series.
  double busy_delta_sum = 0, busy_delta_max = 0, qd_sum = 0;
  std::uint64_t qd_max = 0;
  for (std::size_t i = 0; i < tlp_.repo_disks; ++i) {
    storage::Disk& d = repo_disk(i);
    const double busy = sim::to_seconds(d.busy_time());
    const double delta = busy - tlp_.prev_busy[i];
    tlp_.prev_busy[i] = busy;
    busy_delta_sum += delta;
    if (delta > busy_delta_max) busy_delta_max = delta;
    const std::uint64_t qd = d.queue_depth();
    qd_sum += as_d(qd);
    if (qd > qd_max) qd_max = qd;
    if (i < tlp_.labeled) {
      tl.record(tlp_.p_qd[i], as_d(qd));
      tl.record(tlp_.p_util[i], delta / dt);
      const double hits = as_d(d.cache_hits());
      const double misses = as_d(d.cache_misses());
      const double dh = hits - tlp_.prev_hits[i];
      const double dm = misses - tlp_.prev_misses[i];
      tlp_.prev_hits[i] = hits;
      tlp_.prev_misses[i] = misses;
      tl.record(tlp_.p_hit[i], dh + dm > 0 ? dh / (dh + dm) : 0.0);
      net::NetNode& nd = network_->node(compute_nodes_[i]);
      const double nic = sim::to_seconds(nd.tx().busy_time()) +
                         sim::to_seconds(nd.rx().busy_time());
      tl.record(tlp_.p_nic[i], (nic - tlp_.prev_nic[i]) / (2.0 * dt));
      tlp_.prev_nic[i] = nic;
    }
  }
  const double nrepo = as_d(tlp_.repo_disks);
  tl.record(tlp_.util_repo,
            tlp_.repo_disks > 0 ? busy_delta_sum / (nrepo * dt) : 0.0);
  const double mean_delta = tlp_.repo_disks > 0 ? busy_delta_sum / nrepo : 0.0;
  tl.record(tlp_.imbalance, mean_delta > 0 ? busy_delta_max / mean_delta : 0.0);
  tl.record(tlp_.qd_mean, tlp_.repo_disks > 0 ? qd_sum / nrepo : 0.0);
  tl.record(tlp_.qd_max, as_d(qd_max));

  // Local-disk pressure: the fullest dirty-page budget in the fleet. When
  // this nears 1, write-back throttling binds writers — the Fig. 5(a)
  // degradation regime.
  double dirty_frac = 0;
  const double limit = as_d(cfg_.disk.dirty_limit);
  if (limit > 0) {
    Bytes dirty_max = 0;
    for (const auto& d : disks_) dirty_max = std::max(dirty_max, d->dirty_bytes());
    dirty_max = std::max(dirty_max, nfs_disk_->dirty_bytes());
    dirty_frac = std::min(1.0, as_d(dirty_max) / limit);
  }
  tl.record(tlp_.util_local, dirty_frac);

  tl.record(tlp_.sim_queue, as_d(engine_.queue_depth()));
  tl.record(tlp_.sim_tasks, as_d(engine_.live_tasks()));

  const double stored = as_d(repository_bytes());
  tl.record(tlp_.repo_growth, (stored - tlp_.prev_stored) / dt);
  tlp_.prev_stored = stored;

  if (tlp_.has_mirror) {
    Bytes inflight = 0;
    for (const auto& inst : instances_) {
      if (inst->ours) {
        inflight += inst->ours->inflight_chunks() * cfg_.chunk_size;
      }
    }
    tl.record(tlp_.mirror_inflight, as_d(inflight));
  }
}

sim::Task<void> Cloud::timeline_sampler() {
  // Background lane, billed like the Disk flusher: span 0 keeps the
  // sampler's sleeps and wakeups out of critical-path attribution, so the
  // workload spans' bucket sums stay closed.
  engine_.set_current_span(0);
  const double cadence = obs_.timeline.cadence_seconds();
  for (;;) {
    const double now = engine_.now_seconds();
    // Next absolute grid point strictly after now. The grid is global
    // (k * cadence from t = 0), so samples from consecutive phases align.
    double next = (std::floor(now / cadence + 1e-9) + 1.0) * cadence;
    if (next <= now) next = now + cadence;
    co_await engine_.sleep_until(sim::from_seconds(next));
    const std::uint64_t events = engine_.events_processed();
    const bool idle = events - tlp_.last_events <= 1;
    tlp_.last_events = events;
    sample_timeline();
    // Exit once the workload drained: nothing queued, and either the
    // sampler is the only live task or the whole interval processed no
    // event but our own wakeup (covers tasks parked on events nobody will
    // set — without this the sampler would keep simulated time advancing
    // forever and run() would never return).
    if (engine_.queue_depth() == 0 &&
        (engine_.live_tasks() == 1 || idle)) {
      break;
    }
  }
}

void Cloud::run_engine() {
  if (obs_.timeline.enabled()) {
    if (!tlp_.ready) setup_timeline();
    tlp_.last_events = engine_.events_processed();
    engine_.spawn(timeline_sampler());
  }
  engine_.run();
}

std::string Cloud::timeline_json() const {
  const obs::Timeline& tl = obs_.timeline;
  if (!tl.enabled()) return "";
  if (!tlp_.ready) return tl.to_json();
  obs::PhaseOptions po;
  po.cadence_seconds = tl.cadence_seconds();
  const obs::PhaseReport phases = obs::analyze_phases(
      tl.times(), tl.values(tlp_.util_repo), tl.values(tlp_.util_net),
      tl.values(tlp_.util_local), po);
  return tl.to_json(obs::phases_json(phases));
}

void Cloud::collect_metrics() {
  obs::Registry& reg = obs_.metrics;
  const auto as_d = [](auto v) { return static_cast<double>(v); };

  reg.gauge("sim.events_processed").set(as_d(engine_.events_processed()));
  reg.gauge("sim.cancelled_wakeups").set(as_d(engine_.cancelled_wakeups()));
  reg.gauge("sim.live_tasks").set(as_d(engine_.live_tasks()));
  reg.gauge("sim.now_seconds").set(engine_.now_seconds());

  // Engine self-telemetry: pure functions of seed and spawn order, so they
  // belong with the deterministic gauges (same seed => same values).
  reg.gauge("sim.events_scheduled").set(as_d(engine_.events_scheduled()));
  reg.gauge("sim.queue_depth_high_water")
      .set(as_d(engine_.queue_depth_high_water()));
  reg.gauge("sim.wait_records_created")
      .set(as_d(engine_.wait_records_created()));
  reg.gauge("sim.wait_records_live").set(as_d(engine_.wait_records_live()));
  reg.gauge("sim.wait_records_live_high_water")
      .set(as_d(engine_.wait_records_live_high_water()));

  reg.gauge("net.total_traffic_bytes").set(as_d(network_->total_traffic()));
  reg.gauge("net.payload_bytes").set(as_d(network_->total_payload()));
  reg.gauge("net.messages").set(as_d(network_->total_messages()));
  reg.gauge("net.connections").set(as_d(network_->connections_opened()));
  double nic_wait = 0, nic_busy = 0;
  for (std::size_t i = 0; i < network_->node_count(); ++i) {
    net::NetNode& nd = network_->node(static_cast<net::NodeId>(i));
    nic_wait += sim::to_seconds(nd.tx().total_queue_wait()) +
                sim::to_seconds(nd.rx().total_queue_wait());
    nic_busy += sim::to_seconds(nd.tx().busy_time()) +
                sim::to_seconds(nd.rx().busy_time());
  }
  reg.gauge("net.nic_queue_wait_seconds").set(nic_wait);
  reg.gauge("net.nic_busy_seconds").set(nic_busy);

  double disk_wait = 0, disk_busy = 0;
  std::uint64_t hits = 0, misses = 0;
  Bytes platter_bytes = 0, dirty = 0;
  const auto tally = [&](const storage::Disk& d) {
    disk_wait += sim::to_seconds(d.queue_wait_time());
    disk_busy += sim::to_seconds(d.busy_time());
    hits += d.cache_hits();
    misses += d.cache_misses();
    platter_bytes += d.bytes_read_platter();
    dirty += d.dirty_bytes();
  };
  for (const auto& d : disks_) tally(*d);
  tally(*nfs_disk_);
  reg.gauge("disk.queue_wait_seconds_total").set(disk_wait);
  reg.gauge("disk.busy_seconds_total").set(disk_busy);
  reg.gauge("disk.platter_bytes").set(as_d(platter_bytes));
  reg.gauge("disk.dirty_bytes").set(as_d(dirty));
  reg.gauge("disk.cache_hit_ratio")
      .set(hits + misses > 0 ? as_d(hits) / as_d(hits + misses) : 0.0);

  if (store_) {
    reg.gauge("blob.stored_bytes").set(as_d(store_->stored_bytes()));
    reg.gauge("blob.metadata_nodes").set(as_d(store_->metadata_nodes()));
    reg.gauge("blob.metadata_node_visits")
        .set(as_d(store_->metadata_node_visits()));
    reg.gauge("blob.dedup_hits").set(as_d(store_->dedup_hits()));
    reg.gauge("blob.dedup_saved_bytes").set(as_d(store_->dedup_saved_bytes()));
  }

  if (cluster_) {
    // Per-provider skew summary (the paper's §5.2 load-balance concern),
    // available with timelines off: platter queue-depth high-water across
    // providers and the served-bytes imbalance ratio (max/mean; 1.0 is a
    // perfectly even spread, 0 means no provider traffic yet).
    const std::size_t np = cluster_->provider_count();
    std::uint64_t qd_max = 0;
    double qd_sum = 0, served_sum = 0, served_max = 0;
    for (std::size_t p = 0; p < np; ++p) {
      storage::Disk& d = cluster_->disk_of(static_cast<blob::ProviderId>(p));
      const std::uint64_t qd = d.queue_depth_high_water();
      qd_sum += as_d(qd);
      if (qd > qd_max) qd_max = qd;
      const double served = as_d(d.bytes_read_platter());
      served_sum += served;
      if (served > served_max) served_max = served;
    }
    reg.gauge("blob.provider.queue_depth_max").set(as_d(qd_max));
    reg.gauge("blob.provider.queue_depth_mean")
        .set(np > 0 ? qd_sum / as_d(np) : 0.0);
    const double served_mean = np > 0 ? served_sum / as_d(np) : 0.0;
    reg.gauge("blob.provider.imbalance")
        .set(served_mean > 0 ? served_max / served_mean : 0.0);
  }

  if (strategy_ == Strategy::kOurs) {
    Bytes fetched = 0, gapfill = 0, mirrored = 0, mirror_dirty = 0;
    std::uint64_t fetches = 0, locates = 0, prefetched = 0, waits = 0,
                  skipped = 0;
    std::size_t fragments = 0;
    bool single_region = true;
    for (const auto& inst : instances_) {
      if (!inst->ours) continue;
      const mirror::SimDiskStats& s = inst->ours->stats();
      fetched += s.remote_bytes_fetched;
      fetches += s.remote_fetches;
      locates += s.locate_calls;
      prefetched += s.prefetched_chunks;
      waits += s.inflight_waits;
      skipped += s.prefetch_skipped;
      gapfill += s.gapfill_bytes;
      const mirror::LocalState& ls = inst->ours->local_state();
      fragments += ls.fragment_count();
      mirrored += ls.mirrored_bytes();
      mirror_dirty += ls.dirty_bytes();
      single_region = single_region && ls.single_region_invariant_holds();
    }
    reg.gauge("mirror.remote_bytes_fetched").set(as_d(fetched));
    reg.gauge("mirror.remote_fetches").set(as_d(fetches));
    reg.gauge("mirror.locate_calls").set(as_d(locates));
    reg.gauge("mirror.prefetched_chunks").set(as_d(prefetched));
    reg.gauge("mirror.inflight_waits").set(as_d(waits));
    reg.gauge("mirror.prefetch_skipped").set(as_d(skipped));
    // Fraction of prefetch candidates that were genuinely ahead of demand.
    reg.gauge("mirror.prefetch_hit_ratio")
        .set(prefetched + skipped > 0 ? as_d(prefetched) / as_d(prefetched + skipped)
                                      : 0.0);
    reg.gauge("mirror.gapfill_bytes").set(as_d(gapfill));
    reg.gauge("mirror.fragment_count").set(as_d(fragments));
    reg.gauge("mirror.mirrored_bytes").set(as_d(mirrored));
    reg.gauge("mirror.dirty_bytes").set(as_d(mirror_dirty));
    reg.gauge("mirror.single_region_invariant").set(single_region ? 1.0 : 0.0);
  }

  reg.gauge("cloud.instances").set(as_d(instances_.size()));
  reg.gauge("cloud.repository_bytes").set(as_d(repository_bytes()));

  // Trace health: nonzero pairing errors or dangling begins mean the span
  // instrumentation regressed somewhere.
  reg.gauge("trace.pairing_errors").set(as_d(obs_.trace.pairing_errors()));
  reg.gauge("trace.open_begins").set(as_d(obs_.trace.open_begins()));

  // Trace volume accounting: what was recorded vs dropped, by cause. The
  // ring/sampling decisions are deterministic (capacity + seed-derived),
  // so these stay in the fingerprinted export too.
  reg.gauge("trace.sampled").set(as_d(obs_.trace.recorded_total()));
  reg.gauge("trace.dropped").set(as_d(obs_.trace.dropped_total()));
  reg.gauge("trace.dropped_ring").set(as_d(obs_.trace.dropped_ring()));
  reg.gauge("trace.dropped_sampling").set(as_d(obs_.trace.dropped_sampling()));
  reg.gauge("trace.dropped_stray_end")
      .set(as_d(obs_.trace.dropped_stray_end()));
  // Lane of the first stray end() (-1 while the trace is pairing-clean):
  // turns "a pairing bug exists" into "start looking at this lane".
  reg.gauge("trace.first_stray_lane")
      .set(obs_.trace.has_stray_end() ? as_d(obs_.trace.first_stray_lane())
                                      : -1.0);

  if (obs_.timeline.enabled()) {
    reg.gauge("timeline.samples_taken")
        .set(as_d(obs_.timeline.samples_taken()));
    reg.gauge("timeline.dropped_samples")
        .set(as_d(obs_.timeline.dropped_samples()));
  }

  // Host-side numbers (wall clock, RSS) vary run to run on the same seed;
  // they live in the host scope, which to_json() never serializes.
  if (const obs::SelfProfiler* prof = engine_.profiler()) {
    const double wall = prof->run_seconds();
    reg.host_gauge("engine.wall_seconds").set(wall);
    reg.host_gauge("engine.events_per_sec")
        .set(wall > 0 ? as_d(engine_.events_processed()) / wall : 0.0);
    reg.host_gauge("engine.dispatch_seconds").set(prof->dispatch_seconds());
    reg.host_gauge("engine.queue_ops_seconds")
        .set(prof->seconds(obs::SelfProfiler::kQueueOps));
    reg.host_gauge("engine.auditor_seconds")
        .set(prof->seconds(obs::SelfProfiler::kAuditor));
    reg.host_gauge("engine.tracer_seconds")
        .set(prof->seconds(obs::SelfProfiler::kTracer));
    reg.host_gauge("engine.user_work_seconds").set(prof->user_seconds());
    reg.host_gauge("host.peak_rss_bytes").set(as_d(obs::peak_rss_bytes()));
  }
}

std::string Cloud::metrics_json() {
  collect_metrics();
  return obs_.metrics.to_json();
}

}  // namespace vmstorm::cloud
