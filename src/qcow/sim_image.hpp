// SimImage: cost-model twin of qcow::Image for cluster simulations.
//
// Replays the exact I/O translation the real format performs — request-
// granularity read-through to the backing file, whole-cluster copy-on-write
// on first write — but charges simulated time (local disk, network to the
// PVFS backing store) instead of moving bytes. Allocation state evolves
// identically to the real Image given the same operation sequence, which a
// cross-validation test asserts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "dfs/sim_dfs.hpp"
#include "net/network.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace vmstorm::qcow {

class SimImage {
 public:
  SimImage(dfs::SimDfs& backing_dfs, dfs::FileId backing_file,
           storage::Disk& local_disk, net::NodeId node, Bytes virtual_size,
           Bytes cluster_size = 64_KiB, std::uint64_t instance_salt = 0);

  Bytes virtual_size() const { return virtual_size_; }
  Bytes cluster_size() const { return cluster_size_; }
  std::uint64_t cluster_count() const {
    return (virtual_size_ + cluster_size_ - 1) / cluster_size_;
  }

  sim::Task<void> read(Bytes offset, Bytes length);
  sim::Task<void> write(Bytes offset, Bytes length);

  bool cluster_allocated(std::uint64_t index) const {
    return allocated_[index];
  }
  std::uint64_t allocated_clusters() const { return allocated_count_; }
  Bytes backing_bytes_read() const { return backing_bytes_read_; }
  std::uint64_t backing_reads() const { return backing_reads_; }

  /// Size of the local qcow2 file a snapshot must copy (header + tables +
  /// allocated clusters) — what the Fig. 5 baseline ships back to PVFS.
  Bytes host_file_bytes() const;

  /// Adopts another image's allocation map (resuming a snapshotted qcow2
  /// file that was copied onto this node); charges no I/O.
  void adopt_allocation(const SimImage& other);

 private:
  sim::Task<void> ensure_allocated(std::uint64_t index);
  std::uint64_t local_cache_key(std::uint64_t cluster) const;

  dfs::SimDfs* dfs_;
  dfs::FileId backing_file_;
  storage::Disk* local_disk_;
  net::NodeId node_;
  Bytes virtual_size_;
  Bytes cluster_size_;
  std::uint64_t salt_;
  std::vector<bool> allocated_;
  std::uint64_t allocated_count_ = 0;
  Bytes backing_bytes_read_ = 0;
  std::uint64_t backing_reads_ = 0;
};

}  // namespace vmstorm::qcow
