// qcow2-style copy-on-write image format (the paper's baseline, [12]).
//
// A faithful, simplified reimplementation of the on-disk scheme QEMU's
// qcow2 uses for backing-file CoW:
//
//   header | L1 table | { L2 tables and data clusters, allocated at EOF }
//
// The virtual disk is divided into clusters (default 64 KiB, qcow2's
// default). A two-level table maps virtual cluster -> host file offset;
// entry 0 means "unallocated": reads fall through to the backing file (at
// request granularity — no prefetch, the behaviour our mirroring module's
// strategy 1 improves on), or zeros without a backing file. The first
// write to a cluster copies the whole cluster from the backing file
// (copy-on-write), allocates it at EOF and updates the tables.
//
// Omitted relative to QEMU: refcounts (no internal snapshots — the paper
// snapshots by copying the whole qcow2 file), compression, and encryption.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "qcow/byte_file.hpp"

namespace vmstorm::qcow {

inline constexpr std::uint32_t kQcowMagic = 0x766d7351u;  // "Qsmv"
inline constexpr std::uint32_t kQcowVersion = 1;

struct ImageStats {
  std::uint64_t allocated_clusters = 0;
  std::uint64_t cow_copies = 0;         // cluster copies from backing
  Bytes backing_bytes_read = 0;         // includes CoW copies
  std::uint64_t backing_reads = 0;      // number of backing requests
};

class Image {
 public:
  /// Formats `file` as an empty CoW image of `virtual_size`, optionally
  /// layered over `backing` (a raw image of at least virtual_size bytes).
  static Result<std::unique_ptr<Image>> create(std::unique_ptr<ByteFile> file,
                                               Bytes virtual_size,
                                               Bytes cluster_size = 64_KiB,
                                               ByteFile* backing = nullptr);

  /// Opens an existing image; `backing` must match how it was created.
  static Result<std::unique_ptr<Image>> open(std::unique_ptr<ByteFile> file,
                                             ByteFile* backing = nullptr);

  Bytes virtual_size() const { return virtual_size_; }
  Bytes cluster_size() const { return cluster_size_; }
  std::uint64_t cluster_count() const {
    return (virtual_size_ + cluster_size_ - 1) / cluster_size_;
  }

  Status read(Bytes offset, std::span<std::byte> out);
  Status write(Bytes offset, std::span<const std::byte> in);

  bool cluster_allocated(std::uint64_t index) const;
  const ImageStats& stats() const { return stats_; }

  /// Host-file footprint (header + tables + allocated clusters).
  Bytes host_file_size() const { return file_->size(); }

 private:
  Image() = default;

  Status load_tables();
  Status persist_header();
  Result<Bytes> cluster_host_offset(std::uint64_t index) const;
  Result<Bytes> ensure_allocated(std::uint64_t index);
  Bytes allocate_at_eof(Bytes bytes);

  struct Header {
    std::uint32_t magic = kQcowMagic;
    std::uint32_t version = kQcowVersion;
    std::uint64_t virtual_size = 0;
    std::uint32_t cluster_bits = 0;
    std::uint32_t l1_entries = 0;
    std::uint64_t l1_offset = 0;
    std::uint64_t backing_size = 0;  // 0 = no backing file
  };

  std::unique_ptr<ByteFile> file_;
  ByteFile* backing_ = nullptr;
  Bytes virtual_size_ = 0;
  Bytes cluster_size_ = 0;
  std::uint64_t entries_per_l2_ = 0;
  std::vector<std::uint64_t> l1_;               // L2 table host offsets (0 = none)
  std::vector<std::vector<std::uint64_t>> l2_;  // cached L2 tables
  ImageStats stats_;
};

}  // namespace vmstorm::qcow
