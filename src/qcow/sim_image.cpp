#include "qcow/sim_image.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vmstorm::qcow {

SimImage::SimImage(dfs::SimDfs& backing_dfs, dfs::FileId backing_file,
                   storage::Disk& local_disk, net::NodeId node,
                   Bytes virtual_size, Bytes cluster_size,
                   std::uint64_t instance_salt)
    : dfs_(&backing_dfs), backing_file_(backing_file), local_disk_(&local_disk),
      node_(node), virtual_size_(virtual_size), cluster_size_(cluster_size),
      salt_(instance_salt), allocated_(cluster_count(), false) {}

std::uint64_t SimImage::local_cache_key(std::uint64_t cluster) const {
  return mix64((salt_ << 24) ^ 0x9c0c0000ULL ^ cluster);
}

sim::Task<void> SimImage::ensure_allocated(std::uint64_t index) {
  if (allocated_[index]) co_return;
  // Copy-on-write: fetch the full cluster from the backing file on PVFS,
  // then write it to the local qcow2 file.
  const Bytes base = index * cluster_size_;
  const Bytes live = std::min(cluster_size_, virtual_size_ - base);
  co_await dfs_->read(node_, backing_file_, base, live);
  backing_bytes_read_ += live;
  ++backing_reads_;
  co_await local_disk_->write_async(live, local_cache_key(index));
  allocated_[index] = true;
  ++allocated_count_;
}

sim::Task<void> SimImage::read(Bytes offset, Bytes length) {
  const Bytes end = offset + length;
  for (std::uint64_t ci = offset / cluster_size_;
       length > 0 && ci * cluster_size_ < end; ++ci) {
    const Bytes base = ci * cluster_size_;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + cluster_size_);
    if (allocated_[ci]) {
      co_await local_disk_->read(local_cache_key(ci), hi - lo);
    } else {
      // Request-granularity pass-through: only [lo, hi) travels.
      co_await dfs_->read(node_, backing_file_, lo, hi - lo);
      backing_bytes_read_ += hi - lo;
      ++backing_reads_;
    }
  }
}

sim::Task<void> SimImage::write(Bytes offset, Bytes length) {
  const Bytes end = offset + length;
  for (std::uint64_t ci = offset / cluster_size_;
       length > 0 && ci * cluster_size_ < end; ++ci) {
    const Bytes base = ci * cluster_size_;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + cluster_size_);
    co_await ensure_allocated(ci);
    co_await local_disk_->write_async(hi - lo, local_cache_key(ci));
  }
}

void SimImage::adopt_allocation(const SimImage& other) {
  allocated_ = other.allocated_;
  allocated_count_ = other.allocated_count_;
}

Bytes SimImage::host_file_bytes() const {
  // Header + L1 + L2 tables (approximated as fully dense) + clusters.
  const std::uint64_t entries_per_l2 = cluster_size_ / 8;
  const std::uint64_t l2_tables =
      (cluster_count() + entries_per_l2 - 1) / entries_per_l2;
  return 64 + l2_tables * 8 + l2_tables * entries_per_l2 * 8 +
         allocated_count_ * cluster_size_;
}

}  // namespace vmstorm::qcow
