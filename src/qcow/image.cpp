#include "qcow/image.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace vmstorm::qcow {

namespace {

constexpr Bytes kHeaderBytes = 64;

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::unique_ptr<Image>> Image::create(std::unique_ptr<ByteFile> file,
                                             Bytes virtual_size,
                                             Bytes cluster_size,
                                             ByteFile* backing) {
  if (virtual_size == 0 || cluster_size == 0 ||
      (cluster_size & (cluster_size - 1)) != 0) {
    return invalid_argument("virtual size must be > 0, cluster size a power of two");
  }
  if (backing != nullptr && backing->size() < virtual_size) {
    return invalid_argument("backing file smaller than virtual size");
  }
  auto img = std::unique_ptr<Image>(new Image());
  img->file_ = std::move(file);
  img->backing_ = backing;
  img->virtual_size_ = virtual_size;
  img->cluster_size_ = cluster_size;
  img->entries_per_l2_ = cluster_size / 8;
  const std::uint64_t clusters = img->cluster_count();
  const std::uint64_t l1_entries =
      (clusters + img->entries_per_l2_ - 1) / img->entries_per_l2_;
  img->l1_.assign(l1_entries, 0);
  img->l2_.resize(l1_entries);
  VMSTORM_RETURN_IF_ERROR(img->persist_header());
  // Zero-filled L1 table right after the header.
  std::vector<std::byte> zeros(l1_entries * 8, std::byte{0});
  VMSTORM_RETURN_IF_ERROR(img->file_->pwrite(kHeaderBytes, zeros));
  return img;
}

Result<std::unique_ptr<Image>> Image::open(std::unique_ptr<ByteFile> file,
                                           ByteFile* backing) {
  std::byte hdr[kHeaderBytes];
  VMSTORM_RETURN_IF_ERROR(file->pread(0, hdr));
  if (get_u32(hdr) != kQcowMagic) return corruption("bad qcow magic");
  if (get_u32(hdr + 4) != kQcowVersion) return corruption("bad qcow version");
  auto img = std::unique_ptr<Image>(new Image());
  img->file_ = std::move(file);
  img->backing_ = backing;
  img->virtual_size_ = get_u64(hdr + 8);
  const std::uint32_t cluster_bits = get_u32(hdr + 16);
  img->cluster_size_ = Bytes{1} << cluster_bits;
  img->entries_per_l2_ = img->cluster_size_ / 8;
  const std::uint32_t l1_entries = get_u32(hdr + 20);
  const std::uint64_t l1_offset = get_u64(hdr + 24);
  const std::uint64_t backing_size = get_u64(hdr + 32);
  if (backing_size == 0 && backing != nullptr) {
    return invalid_argument("image was created without a backing file");
  }
  if (backing_size != 0 &&
      (backing == nullptr || backing->size() < backing_size)) {
    return invalid_argument("missing or undersized backing file");
  }
  img->l1_.assign(l1_entries, 0);
  img->l2_.resize(l1_entries);
  std::vector<std::byte> raw(l1_entries * 8);
  VMSTORM_RETURN_IF_ERROR(img->file_->pread(l1_offset, raw));
  for (std::uint32_t i = 0; i < l1_entries; ++i) {
    img->l1_[i] = get_u64(raw.data() + i * 8);
  }
  VMSTORM_RETURN_IF_ERROR(img->load_tables());
  return img;
}

Status Image::load_tables() {
  std::vector<std::byte> raw(entries_per_l2_ * 8);
  for (std::size_t i = 0; i < l1_.size(); ++i) {
    if (l1_[i] == 0) continue;
    VMSTORM_RETURN_IF_ERROR(file_->pread(l1_[i], raw));
    l2_[i].resize(entries_per_l2_);
    for (std::uint64_t j = 0; j < entries_per_l2_; ++j) {
      l2_[i][j] = get_u64(raw.data() + j * 8);
    }
    for (std::uint64_t j = 0; j < entries_per_l2_; ++j) {
      if (l2_[i][j] != 0) ++stats_.allocated_clusters;
    }
  }
  return Status::ok();
}

Status Image::persist_header() {
  std::byte hdr[kHeaderBytes] = {};
  put_u32(hdr, kQcowMagic);
  put_u32(hdr + 4, kQcowVersion);
  put_u64(hdr + 8, virtual_size_);
  put_u32(hdr + 16, static_cast<std::uint32_t>(std::countr_zero(cluster_size_)));
  put_u32(hdr + 20, static_cast<std::uint32_t>(l1_.size()));
  put_u64(hdr + 24, kHeaderBytes);  // L1 sits right after the header
  put_u64(hdr + 32, backing_ != nullptr ? virtual_size_ : 0);
  return file_->pwrite(0, hdr);
}

Bytes Image::allocate_at_eof(Bytes bytes) {
  const Bytes at = file_->size();
  std::vector<std::byte> zeros(bytes, std::byte{0});
  Status st = file_->pwrite(at, zeros);
  assert(st.is_ok());
  (void)st;
  return at;
}

Result<Bytes> Image::cluster_host_offset(std::uint64_t index) const {
  const std::uint64_t l1i = index / entries_per_l2_;
  const std::uint64_t l2i = index % entries_per_l2_;
  if (l1i >= l1_.size()) return out_of_range("cluster index");
  if (l1_[l1i] == 0 || l2_[l1i].empty()) return Bytes{0};
  return l2_[l1i][l2i];
}

bool Image::cluster_allocated(std::uint64_t index) const {
  auto r = cluster_host_offset(index);
  return r.is_ok() && *r != 0;
}

Result<Bytes> Image::ensure_allocated(std::uint64_t index) {
  const std::uint64_t l1i = index / entries_per_l2_;
  const std::uint64_t l2i = index % entries_per_l2_;
  if (l1i >= l1_.size()) return out_of_range("cluster index");
  if (l1_[l1i] == 0) {
    const Bytes l2_at = allocate_at_eof(entries_per_l2_ * 8);
    l1_[l1i] = l2_at;
    l2_[l1i].assign(entries_per_l2_, 0);
    std::byte enc[8];
    put_u64(enc, l2_at);
    VMSTORM_RETURN_IF_ERROR(file_->pwrite(kHeaderBytes + l1i * 8, enc));
  }
  if (l2_[l1i][l2i] != 0) return l2_[l1i][l2i];

  // Copy-on-write: materialize the full cluster before first write.
  const Bytes host = allocate_at_eof(cluster_size_);
  const Bytes base = index * cluster_size_;
  const Bytes live = std::min(cluster_size_, virtual_size_ - base);
  if (backing_ != nullptr) {
    std::vector<std::byte> buf(live);
    VMSTORM_RETURN_IF_ERROR(backing_->pread(base, buf));
    VMSTORM_RETURN_IF_ERROR(file_->pwrite(host, buf));
    stats_.backing_bytes_read += live;
    ++stats_.backing_reads;
    ++stats_.cow_copies;
  }
  l2_[l1i][l2i] = host;
  ++stats_.allocated_clusters;
  std::byte enc[8];
  put_u64(enc, host);
  VMSTORM_RETURN_IF_ERROR(file_->pwrite(l1_[l1i] + l2i * 8, enc));
  return host;
}

Status Image::read(Bytes offset, std::span<std::byte> out) {
  if (offset + out.size() > virtual_size_) return out_of_range("read past end");
  const Bytes end = offset + out.size();
  for (std::uint64_t ci = offset / cluster_size_;
       out.size() > 0 && ci * cluster_size_ < end; ++ci) {
    const Bytes base = ci * cluster_size_;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + cluster_size_);
    auto dst = out.subspan(lo - offset, hi - lo);
    VMSTORM_ASSIGN_OR_RETURN(host, cluster_host_offset(ci));
    if (host != 0) {
      VMSTORM_RETURN_IF_ERROR(file_->pread(host + (lo - base), dst));
    } else if (backing_ != nullptr) {
      // Unallocated: pass straight through to the backing file, reading
      // only the requested subrange (qcow2 does no read prefetch).
      VMSTORM_RETURN_IF_ERROR(backing_->pread(lo, dst));
      stats_.backing_bytes_read += dst.size();
      ++stats_.backing_reads;
    } else {
      std::memset(dst.data(), 0, dst.size());
    }
  }
  return Status::ok();
}

Status Image::write(Bytes offset, std::span<const std::byte> in) {
  if (offset + in.size() > virtual_size_) return out_of_range("write past end");
  const Bytes end = offset + in.size();
  for (std::uint64_t ci = offset / cluster_size_;
       in.size() > 0 && ci * cluster_size_ < end; ++ci) {
    const Bytes base = ci * cluster_size_;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + cluster_size_);
    VMSTORM_ASSIGN_OR_RETURN(host, ensure_allocated(ci));
    VMSTORM_RETURN_IF_ERROR(
        file_->pwrite(host + (lo - base), in.subspan(lo - offset, hi - lo)));
  }
  return Status::ok();
}

}  // namespace vmstorm::qcow
