#include "qcow/byte_file.hpp"

#include <cstring>

namespace vmstorm::qcow {

Status MemFile::pread(Bytes offset, std::span<std::byte> out) const {
  if (offset + out.size() > data_.size()) {
    return out_of_range("MemFile read past EOF");
  }
  std::memcpy(out.data(), data_.data() + offset, out.size());
  return Status::ok();
}

Status MemFile::pwrite(Bytes offset, std::span<const std::byte> in) {
  if (offset + in.size() > data_.size()) data_.resize(offset + in.size());
  std::memcpy(data_.data() + offset, in.data(), in.size());
  return Status::ok();
}

Bytes DfsFile::size() const {
  auto info = fs_->stat(file_);
  return info.is_ok() ? info->size : 0;
}

Status DfsFile::pread(Bytes offset, std::span<std::byte> out) const {
  bytes_read_ += out.size();
  return fs_->read(file_, offset, out);
}

Status DfsFile::pwrite(Bytes offset, std::span<const std::byte> in) {
  return fs_->write(file_, offset, in);
}

}  // namespace vmstorm::qcow
