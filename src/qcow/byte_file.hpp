// Random-access byte file abstraction the qcow image format is written
// against: an in-memory implementation for tests/examples, and an adapter
// over dfs::StripedFs so backing images can live on the distributed FS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "dfs/striped_fs.hpp"

namespace vmstorm::qcow {

class ByteFile {
 public:
  virtual ~ByteFile() = default;
  virtual Bytes size() const = 0;
  /// Reads exactly out.size() bytes; fails past EOF.
  virtual Status pread(Bytes offset, std::span<std::byte> out) const = 0;
  /// Writes, growing the file as needed.
  virtual Status pwrite(Bytes offset, std::span<const std::byte> in) = 0;
};

class MemFile final : public ByteFile {
 public:
  MemFile() = default;
  explicit MemFile(std::vector<std::byte> data) : data_(std::move(data)) {}

  Bytes size() const override { return data_.size(); }
  Status pread(Bytes offset, std::span<std::byte> out) const override;
  Status pwrite(Bytes offset, std::span<const std::byte> in) override;

  const std::vector<std::byte>& data() const { return data_; }

 private:
  std::vector<std::byte> data_;
};

/// Adapter presenting one StripedFs file as a ByteFile (read-mostly; used
/// for raw backing images stored on the distributed FS).
class DfsFile final : public ByteFile {
 public:
  DfsFile(dfs::StripedFs& fs, dfs::FileId file) : fs_(&fs), file_(file) {}

  Bytes size() const override;
  Status pread(Bytes offset, std::span<std::byte> out) const override;
  Status pwrite(Bytes offset, std::span<const std::byte> in) override;

  /// Bytes fetched from the backing store so far (traffic accounting).
  Bytes bytes_read() const { return bytes_read_; }

 private:
  dfs::StripedFs* fs_;
  dfs::FileId file_;
  mutable Bytes bytes_read_ = 0;
};

}  // namespace vmstorm::qcow
