#include "sim/engine.hpp"

#include <cassert>

#include "common/log.hpp"
#include "obs/selfprof.hpp"
#include "sim/audit.hpp"
#include "sim/causal.hpp"

namespace vmstorm::sim {

namespace {

/// Detached wrapper coroutine driving a spawned Task. Created suspended
/// (so spawn() can enqueue its start deterministically); the frame
/// self-destroys after completion (final_suspend = suspend_never).
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

DetachedTask detached_body(Engine* engine, Task<void> task,
                           std::shared_ptr<JoinState> state,
                           std::size_t* live_tasks) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  --*live_tasks;
  for (auto& rec : state->waiters) {
    if (rec->alive) wake_waiter(*engine, rec);
  }
  state->waiters.clear();
}

}  // namespace

Task<void> JoinHandle::join(Engine& engine) {
  struct JoinAwaiter {
    Engine* engine;
    JoinState* state;
    WaitRef rec;
    JoinAwaiter(Engine* e, JoinState* s) : engine(e), state(s) {}
    JoinAwaiter(const JoinAwaiter&) = delete;
    JoinAwaiter& operator=(const JoinAwaiter&) = delete;
    ~JoinAwaiter() {
      // Joiner destroyed while suspended: invalidate our record so the
      // completion path and the engine never resume a dead frame.
      if (rec && !rec->resumed) rec->alive = false;
    }
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> h) {
      rec = make_wait_record(*engine, h);
      // vmlint:allow(hot-path-alloc) join waiter lists are short-lived and
      // few; not worth an intrusive list.
      state->waiters.push_back(rec);
    }
    void await_resume() noexcept {
      if (!rec) return;
      rec->resumed = true;
      record_wait_edge(*engine, *rec, "sim.join");
    }
  };
  assert(state_ && "joining an invalid handle");
  co_await JoinAwaiter{&engine, state_.get()};
  if (state_->exception) std::rethrow_exception(state_->exception);
}

std::uint64_t Engine::schedule_at(SimTime t, std::coroutine_handle<> h,
                                  WaitGuard alive, std::uint64_t span) {
  assert(t >= now_ && "cannot schedule in the past");
  if (span == kInheritSpan) span = current_span_;
  const std::uint64_t seq = next_seq_++;
  queue_.enqueue(QueuedEvent{t, seq, h, span, std::move(alive)});
  if (queue_.size() > queue_depth_hw_) queue_depth_hw_ = queue_.size();
  return seq;
}

// vmlint:allow(span-coverage) sleep is a modeled delay, not contention: the
// sleeping span is doing its own (simulated) work, so emitting a wait edge
// here would bill compute phases as waits and skew critical-path attribution.
void Engine::SleepAwaiter::await_suspend(std::coroutine_handle<> h) {
  rec = make_wait_record(*engine, h);
  const std::uint64_t seq =
      engine->schedule_at(wake_at, h, alive_guard(rec));
  if (Auditor* a = engine->auditor()) a->on_wakeup_scheduled(seq, rec);
}

JoinHandle Engine::spawn(Task<void> task) {
  auto state = std::make_shared<JoinState>();
  ++live_tasks_;
  DetachedTask d = detached_body(this, std::move(task), state, &live_tasks_);
  // The detached frame is engine-owned and self-destroys only on completion,
  // so its startup resumption needs no liveness guard.
  // lint:allow(unguarded-waiter-schedule) detached frame cannot be destroyed externally
  schedule_after(0, d.handle);
  return JoinHandle(state);
}

std::uint64_t Engine::run(SimTime until) {
  // Log lines emitted by simulated components carry the simulated clock
  // while the loop runs; nested run() calls restore the outer clock.
  ScopedLogClock log_clock([this] { return now_seconds(); });
  // The caller's span context is restored on exit so nested run() calls (and
  // phase code that set a span around the loop) see their own span again.
  const std::uint64_t outer_span = current_span_;
  // Only the outermost run() profiles; a nested run() (a component driving
  // the loop re-entrantly from inside a resumption) is already inside the
  // outer call's kResume bucket and would double-charge every phase.
  obs::SelfProfiler* const prof = run_depth_ == 0 ? profiler_ : nullptr;
  ++run_depth_;
  const double run_t0 =
      prof != nullptr ? obs::SelfProfiler::wall_now() : 0.0;
  std::uint64_t n = 0;
  bool until_reached = false;
  while (!queue_.empty()) {
    double t0 = prof != nullptr ? obs::SelfProfiler::wall_now() : 0.0;
    const QueuedEvent* head = queue_.peek();
    if (until >= 0 && head->time > until) {
      if (prof != nullptr) {
        prof->charge(obs::SelfProfiler::kQueueOps,
                     obs::SelfProfiler::wall_now() - t0);
      }
      now_ = until;
      until_reached = true;
      break;
    }
    QueuedEvent ev = queue_.dequeue();
    if (prof != nullptr) {
      prof->charge(obs::SelfProfiler::kQueueOps,
                   obs::SelfProfiler::wall_now() - t0);
    }
    assert(ev.time >= now_);
    if (!ev.guard.unconditional() && !ev.guard.valid()) {
      // The waiter was destroyed after this wakeup was queued; resuming the
      // handle would be a use-after-free. Drop the event without advancing
      // simulated time past it (time still moves to ev.time for ordering).
      now_ = ev.time;
      ++cancelled_wakeups_;
      if (auditor_ != nullptr) {
        t0 = prof != nullptr ? obs::SelfProfiler::wall_now() : 0.0;
        auditor_->on_event(ev.seq, ev.time, /*dropped=*/true);
        if (prof != nullptr) {
          prof->charge(obs::SelfProfiler::kAuditor,
                       obs::SelfProfiler::wall_now() - t0);
        }
      }
      continue;
    }
    now_ = ev.time;
    if (auditor_ != nullptr) {
      t0 = prof != nullptr ? obs::SelfProfiler::wall_now() : 0.0;
      auditor_->on_event(ev.seq, ev.time, /*dropped=*/false);
      if (prof != nullptr) {
        prof->charge(obs::SelfProfiler::kAuditor,
                     obs::SelfProfiler::wall_now() - t0);
      }
    }
    current_span_ = ev.span;
    ++n;
    ++events_processed_;
    t0 = prof != nullptr ? obs::SelfProfiler::wall_now() : 0.0;
    ev.handle.resume();
    if (prof != nullptr) {
      prof->charge(obs::SelfProfiler::kResume,
                   obs::SelfProfiler::wall_now() - t0);
    }
  }
  current_span_ = outer_span;
  --run_depth_;
  if (prof != nullptr) {
    prof->charge_run(obs::SelfProfiler::wall_now() - run_t0);
  }
  if (!until_reached && live_tasks_ > 0) {
    VMSTORM_CLOG(kWarn, "sim") << "event queue drained with " << live_tasks_
                               << " live task(s) still blocked";
  }
  return n;
}

}  // namespace vmstorm::sim
