#include "sim/engine.hpp"

#include <cassert>

#include "common/log.hpp"

namespace vmstorm::sim {

namespace {

/// Detached wrapper coroutine driving a spawned Task. Created suspended
/// (so spawn() can enqueue its start deterministically); the frame
/// self-destroys after completion (final_suspend = suspend_never).
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

DetachedTask detached_body(Engine* engine, Task<void> task,
                           std::shared_ptr<JoinState> state,
                           std::size_t* live_tasks) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  --*live_tasks;
  for (auto waiter : state->waiters) engine->schedule_after(0, waiter);
  state->waiters.clear();
}

}  // namespace

Task<void> JoinHandle::join(Engine& engine) {
  struct JoinAwaiter {
    JoinState* state;
    bool await_ready() const noexcept { return state->done; }
    void await_suspend(std::coroutine_handle<> h) const {
      state->waiters.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  (void)engine;
  assert(state_ && "joining an invalid handle");
  co_await JoinAwaiter{state_.get()};
  if (state_->exception) std::rethrow_exception(state_->exception);
}

void Engine::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, h});
}

JoinHandle Engine::spawn(Task<void> task) {
  auto state = std::make_shared<JoinState>();
  ++live_tasks_;
  DetachedTask d = detached_body(this, std::move(task), state, &live_tasks_);
  schedule_after(0, d.handle);
  return JoinHandle(state);
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (until >= 0 && ev.time > until) {
      now_ = until;
      return n;
    }
    queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ++n;
    ++events_processed_;
    ev.handle.resume();
  }
  if (live_tasks_ > 0) {
    LOG_WARN << "sim: event queue drained with " << live_tasks_
             << " live task(s) still blocked";
  }
  return n;
}

}  // namespace vmstorm::sim
