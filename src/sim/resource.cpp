// resource.hpp is header-only today; this TU anchors the library and keeps
// a build target per module.
#include "sim/resource.hpp"
