#include "sim/calendar_queue.hpp"

namespace vmstorm::sim {

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1) {
  reset_cursor_to(0);
}

void CalendarQueue::enqueue(QueuedEvent&& ev) {
  const std::uint32_t idx = alloc_node();
  nodes_[idx].ev = std::move(ev);
  const QueuedEvent& e = nodes_[idx].ev;
  if (size_ == 0) {
    // The cursor may have been parked on a long-gone window; restart the
    // year at the sole event.
    reset_cursor_to(e.time);
    link_into_bucket(idx);
    ++ring_size_;
    cached_min_ = idx;
  } else if (cached_min_ != kNil && before(e, nodes_[cached_min_].ev)) {
    // New global minimum behind a cursor that peek() advanced — rewind
    // first, so the newcomer's window anchors the (re-based) year and the
    // event is necessarily ring material. It beats every pending event, so
    // it is its bucket's head and the cache stays a valid head pointer.
    // This must be a full re-base, not a bare cursor reset: the newcomer is
    // behind the CACHE but can still be ahead of the old year base, and then
    // year_end_ moves forward and captures overflow events that must join
    // the ring (found by the queue_churn fuzzer — see
    // FuzzRegression.ShrunkQueueChurnForwardRewindStrandsOverflow).
    re_base(e.time);
    link_into_bucket(idx);
    ++ring_size_;
    cached_min_ = idx;
  } else if (e.time >= year_end_) {
    // Beyond the current year: O(1) unsorted push, no bucket involvement.
    nodes_[idx].next = overflow_head_;
    overflow_head_ = idx;
    ++overflow_size_;
  } else {
    link_into_bucket(idx);
    ++ring_size_;
  }
  ++size_;
  if (ring_size_ > buckets_.size() * 2) rebuild(buckets_.size() * 2);
}

const QueuedEvent* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  if (cached_min_ != kNil) return &nodes_[cached_min_].ev;
  if (ring_size_ > 0) {
    // Walk the calendar year one window at a time, stopping at the year
    // boundary: an accepted head satisfies time < cursor_limit_ <= year_end_,
    // so it is a genuine ring event, smaller than every overflow event.
    // Windows are visited in strictly increasing time order and all in-year
    // events of a window share its bucket, so the first in-window head found
    // is the ring minimum — and thus the global minimum. (The scan must NOT
    // run past year_end_: the cursor persists across peeks, and beyond the
    // boundary it could accept a stranded head while the overflow holds a
    // smaller event.)
    while (cursor_limit_ <= year_end_) {
      const Bucket& b = buckets_[cursor_];
      if (b.head != kNil && nodes_[b.head].ev.time < cursor_limit_) {
        cached_min_ = b.head;
        return &nodes_[b.head].ev;
      }
      cursor_ = (cursor_ + 1) & bucket_mask_;
      cursor_limit_ += static_cast<SimTime>(std::uint64_t{1} << shift_);
    }
    // A nonempty ring with a whole year of empty windows: only events
    // stranded by a backward year re-base remain (a rewind shrank year_end_
    // under them). Direct min scan over bucket heads, merged with the
    // overflow minimum, then re-base the year at the winner.
    std::uint32_t best = kNil;
    for (const Bucket& b : buckets_) {
      if (b.head == kNil) continue;
      if (best == kNil || before(nodes_[b.head].ev, nodes_[best].ev)) {
        best = b.head;
      }
    }
    const std::uint32_t over = overflow_min();
    if (over != kNil && before(nodes_[over].ev, nodes_[best].ev)) best = over;
    re_base(nodes_[best].ev.time);
    cached_min_ = best;
  } else {
    // Ring drained, far-future cohort pending: rebuild around the cohort.
    // Re-picking the width and bucket count from the cohort itself (rebuild
    // does both when the ring is empty) bulk-migrates it into the new year;
    // merely re-basing at the cohort minimum would keep the stale near-
    // cluster width, migrate a handful of events per jump, and degenerate
    // into a full overflow scan per pop.
    std::size_t target = kMinBuckets;
    while (target * 2 < size_) target *= 2;
    rebuild(target);
  }
  // Migration may have overfilled the ring for the current bucket count.
  if (ring_size_ > buckets_.size() * 2) rebuild(buckets_.size() * 2);
  return &nodes_[cached_min_].ev;
}

QueuedEvent CalendarQueue::dequeue() {
  if (cached_min_ == kNil) peek();
  const std::uint32_t idx = cached_min_;
  cached_min_ = kNil;
  // The minimum is necessarily in the ring and the head of its bucket's
  // sorted list.
  Bucket& b = buckets_[bucket_of(nodes_[idx].ev.time)];
  b.head = nodes_[idx].next;
  if (b.head == kNil) b.tail = kNil;
  QueuedEvent out = std::move(nodes_[idx].ev);
  free_node(idx);
  --size_;
  --ring_size_;
  if (size_ > 0 && buckets_.size() > kMinBuckets &&
      ring_size_ < buckets_.size() / 8) {
    rebuild(buckets_.size() / 2);
  }
  return out;
}

void CalendarQueue::link_into_bucket(std::uint32_t idx) {
  Bucket& b = buckets_[bucket_of(nodes_[idx].ev.time)];
  Node& n = nodes_[idx];
  if (b.head == kNil) {
    n.next = kNil;
    b.head = b.tail = idx;
    return;
  }
  if (!before(n.ev, nodes_[b.tail].ev)) {
    // >= tail — the common case: seq increases globally, so a same-window
    // schedule storm degenerates to O(1) tail appends.
    n.next = kNil;
    nodes_[b.tail].next = idx;
    b.tail = idx;
    return;
  }
  if (before(n.ev, nodes_[b.head].ev)) {
    n.next = b.head;
    b.head = idx;
    return;
  }
  std::uint32_t p = b.head;
  while (nodes_[p].next != kNil && !before(n.ev, nodes_[nodes_[p].next].ev)) {
    p = nodes_[p].next;
  }
  // The tail fast path caught insert-at-end, so p.next != kNil here and the
  // tail never moves.
  n.next = nodes_[p].next;
  nodes_[p].next = idx;
}

std::uint32_t CalendarQueue::overflow_min() const {
  std::uint32_t best = kNil;
  for (std::uint32_t i = overflow_head_; i != kNil; i = nodes_[i].next) {
    if (best == kNil || before(nodes_[i].ev, nodes_[best].ev)) best = i;
  }
  return best;
}

void CalendarQueue::re_base(SimTime t) {
  const SimTime prev_year_end = year_end_;
  reset_cursor_to(t);
  // Membership against the new year: overflow events now inside it join the
  // ring. Every overflow event is >= the current year end when pushed and
  // every forward year move migrates, so all overflow events are >= the
  // previous year end: a year that shrank or stood still captured nothing
  // and the walk is skipped — genuine backward rewinds stay O(1). (The
  // reverse direction — ring events beyond a shrunken year — is tolerated;
  // peek's stranded-ring fallback finds them.)
  if (year_end_ <= prev_year_end || overflow_head_ == kNil) return;
  std::uint32_t prev = kNil;
  std::uint32_t i = overflow_head_;
  while (i != kNil) {
    const std::uint32_t next = nodes_[i].next;
    if (nodes_[i].ev.time < year_end_) {
      if (prev == kNil) {
        overflow_head_ = next;
      } else {
        nodes_[prev].next = next;
      }
      link_into_bucket(i);
      ++ring_size_;
      --overflow_size_;
    } else {
      prev = i;
    }
    i = next;
  }
}

void CalendarQueue::rebuild(std::size_t new_buckets) {
  // Chain the ring into one temporary list; its span BEFORE merging the
  // overflow decides the width, so the far-future cohort cannot stretch the
  // buckets the near cluster lives in.
  std::uint32_t all = kNil;
  for (Bucket& b : buckets_) {
    if (b.head == kNil) continue;
    nodes_[b.tail].next = all;
    all = b.head;
    b.head = b.tail = kNil;
  }
  SimTime mn = 0;
  SimTime mx = 0;
  bool first = true;
  for (std::uint32_t i = all; i != kNil; i = nodes_[i].next) {
    const SimTime t = nodes_[i].ev.time;
    if (first || t < mn) mn = t;
    if (first || t > mx) mx = t;
    first = false;
  }
  const std::size_t width_events = ring_size_ > 0 ? ring_size_ : size_;
  // Merge the overflow list in; the re-split below re-decides membership
  // for every node against the new year.
  while (overflow_head_ != kNil) {
    const std::uint32_t next = nodes_[overflow_head_].next;
    nodes_[overflow_head_].next = all;
    all = overflow_head_;
    overflow_head_ = next;
  }
  std::uint32_t min_idx = kNil;
  for (std::uint32_t i = all; i != kNil; i = nodes_[i].next) {
    const SimTime t = nodes_[i].ev.time;
    if (ring_size_ == 0) {
      // The ring is empty (a year jump): the overflow cohort is the only
      // density signal, so its span decides the width below.
      if (min_idx == kNil || t < mn) mn = t;
      if (min_idx == kNil || t > mx) mx = t;
    }
    if (min_idx == kNil || before(nodes_[i].ev, nodes_[min_idx].ev)) {
      min_idx = i;
    }
  }
  if (size_ > 0) {
    // Width = power of two closest to span/size from below: about one event
    // per window when events are evenly spread, one shared bucket when they
    // are all in the same tick. The span is the RING's span when the ring
    // is nonempty — the far-future cohort must not stretch the buckets the
    // near cluster lives in — and the whole pending set's otherwise.
    const std::uint64_t span = static_cast<std::uint64_t>(mx - mn);
    const std::uint64_t ideal = span / width_events + 1;
    unsigned s = 0;
    while (s < kMaxShift && (std::uint64_t{1} << (s + 1)) <= ideal) ++s;
    shift_ = s;
  }
  std::vector<Bucket> fresh(new_buckets);
  buckets_.swap(fresh);
  bucket_mask_ = new_buckets - 1;
  ring_size_ = 0;
  overflow_size_ = 0;
  reset_cursor_to(min_idx != kNil ? nodes_[min_idx].ev.time : SimTime{0});
  // Keep the cache valid across the rebuild: the cursor now sits at the
  // pending minimum's window, which may be AHEAD of the engine's clock. With
  // a nil cache, an enqueue between now and the pending minimum would have
  // no rewind trigger and the event would be stranded behind the cursor;
  // with the cache set, enqueue's new-minimum check rewinds for it. (The
  // global minimum anchors the year, so it re-splits into the ring and is
  // necessarily its bucket's head after re-linking.)
  cached_min_ = min_idx;
  while (all != kNil) {
    const std::uint32_t next = nodes_[all].next;
    if (nodes_[all].ev.time < year_end_) {
      link_into_bucket(all);
      ++ring_size_;
    } else {
      nodes_[all].next = overflow_head_;
      overflow_head_ = all;
      ++overflow_size_;
    }
    all = next;
  }
}

std::uint32_t CalendarQueue::alloc_node() {
  if (free_head_ == kNil) grow_slab();
  const std::uint32_t idx = free_head_;
  free_head_ = nodes_[idx].next;
  nodes_[idx].next = kNil;
  return idx;
}

void CalendarQueue::grow_slab() {
  const std::size_t old_size = nodes_.size();
  const std::size_t new_size = old_size == 0 ? 64 : old_size * 2;
  std::vector<Node> bigger(new_size);
  for (std::size_t i = 0; i < old_size; ++i) bigger[i] = std::move(nodes_[i]);
  nodes_.swap(bigger);
  for (std::size_t i = new_size; i-- > old_size;) {
    nodes_[i].next = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
}

void CalendarQueue::free_node(std::uint32_t idx) {
  // dequeue() moved the whole event (guard included) out of the node, so the
  // stale trivial fields need no reset and the moved-from guard holds no
  // pool reference.
  nodes_[idx].next = free_head_;
  free_head_ = idx;
}

}  // namespace vmstorm::sim
