// Deterministic discrete-event simulation engine.
//
// A single-threaded event loop over (time, sequence) ordered coroutine
// resumptions. Equal-time events fire in schedule order, so a simulation is
// bit-reproducible for a given seed and spawn order.
//
// Usage:
//   sim::Engine e;
//   auto h = e.spawn(my_process(e));
//   e.run();                       // until no events remain
//   double t = e.now_seconds();
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/wait_pool.hpp"

namespace vmstorm::obs {
struct Recorder;
class SelfProfiler;
}  // namespace vmstorm::obs

namespace vmstorm::sim {

class Auditor;
class Engine;

/// Shared completion state of a spawned task.
struct JoinState {
  bool done = false;
  std::exception_ptr exception;
  std::vector<WaitRef> waiters;
};

/// Handle returned by Engine::spawn. Join with `co_await handle.join(engine)`
/// from inside the simulation, or poll done() from outside after run().
class JoinHandle {
 public:
  JoinHandle() = default;
  explicit JoinHandle(std::shared_ptr<JoinState> s) : state_(std::move(s)) {}

  bool valid() const { return static_cast<bool>(state_); }
  bool done() const { return state_ && state_->done; }

  /// Rethrows the task's exception, if it ended with one.
  void rethrow() const {
    if (state_ && state_->exception) std::rethrow_exception(state_->exception);
  }

  Task<void> join(Engine& engine);

 private:
  std::shared_ptr<JoinState> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }
  double now_seconds() const { return to_seconds(now_); }

  /// Sentinel span argument to schedule_at: the queued resumption inherits
  /// the span that is current at schedule time.
  static constexpr std::uint64_t kInheritSpan = ~std::uint64_t{0};

  /// Causal span context. Every queued resumption captures a span id; run()
  /// restores it before resuming the coroutine, so a process keeps its span
  /// across co_await / sleep / spawn without any per-frame storage. 0 means
  /// "no span" (tracing off or top-level code).
  std::uint64_t current_span() const { return current_span_; }
  void set_current_span(std::uint64_t span) { current_span_ = span; }

  /// Enqueues a coroutine resumption at absolute time t (>= now). The
  /// optional `alive` guard is re-checked just before resumption; a wakeup
  /// whose guard reads dead (or generation-stale) is dropped — the waiter
  /// was destroyed while the wakeup was in flight. Wakeups for suspended
  /// waiters held in shared lists must pass a guard — see WaitRecord /
  /// alive_guard in sim/wait_pool.hpp. `span` is the span context restored
  /// when the event fires; the default inherits the span current at schedule
  /// time. Returns the queued event's sequence number (unique per engine),
  /// which audit hooks use to tie a scheduled wakeup to its dispatch.
  std::uint64_t schedule_at(SimTime t, std::coroutine_handle<> h,
                            WaitGuard alive = {},
                            std::uint64_t span = kInheritSpan);
  std::uint64_t schedule_after(SimTime dt, std::coroutine_handle<> h,
                               WaitGuard alive = {},
                               std::uint64_t span = kInheritSpan) {
    return schedule_at(now_ + dt, h, std::move(alive), span);
  }

  /// Awaitable: suspends the current process for dt simulated time.
  auto sleep(SimTime dt) { return SleepAwaiter{this, now_ + (dt < 0 ? 0 : dt)}; }
  auto sleep_until(SimTime t) { return SleepAwaiter{this, t < now_ ? now_ : t}; }
  auto sleep_seconds(double s) { return sleep(from_seconds(s)); }

  /// Starts a detached process. Its frame self-destroys on completion; the
  /// returned handle can be joined. The process begins running at the
  /// current simulated time, once the event loop gets to it.
  JoinHandle spawn(Task<void> task);

  /// Runs until the event queue is empty or `until` (if nonnegative) is
  /// reached. Returns the number of events processed.
  std::uint64_t run(SimTime until = -1);

  /// Number of spawned tasks that have not yet completed. A nonzero value
  /// after run() means processes are blocked on events nobody will set.
  std::size_t live_tasks() const { return live_tasks_; }

  std::uint64_t events_processed() const { return events_processed_; }

  /// Queued wakeups dropped because their waiter was destroyed first.
  std::uint64_t cancelled_wakeups() const { return cancelled_wakeups_; }

  // ---- Engine self-telemetry ---------------------------------------------
  // All counters below are functions of the seed and spawn order only (no
  // wall clock), so exporting them keeps same-seed byte-identity.

  /// Events ever enqueued (== the next sequence number).
  std::uint64_t events_scheduled() const { return next_seq_; }
  std::size_t queue_depth() const { return queue_.size(); }
  /// High-water mark of the event heap's depth.
  std::size_t queue_depth_high_water() const { return queue_depth_hw_; }

  std::uint64_t wait_records_created() const { return wait_pool_.created(); }
  std::uint64_t wait_records_live() const { return wait_pool_.live(); }
  std::uint64_t wait_records_live_high_water() const {
    return wait_pool_.live_high_water();
  }

  /// The engine's wait-record pool. All record construction goes through
  /// here (sim/causal.hpp make_wait_record, the sleep awaiter); the pool
  /// also carries the wait-record telemetry the getters above export.
  WaitPool& wait_pool() { return wait_pool_; }
  const WaitPool& wait_pool() const { return wait_pool_; }

  /// Host-side self-profiling attachment point (obs/selfprof.hpp). Null
  /// (the default) keeps the run loop free of wall-clock reads; attached,
  /// the outermost run() tiles its wall time into the profiler's phases.
  obs::SelfProfiler* profiler() const { return profiler_; }
  void set_profiler(obs::SelfProfiler* profiler) { profiler_ = profiler; }

  /// Observability attachment point. The engine itself only carries the
  /// pointer; instrumented components (and the causal-tracing hooks in
  /// sim/causal.hpp) reach their Recorder through here. Null (the default)
  /// disables all recording.
  obs::Recorder* recorder() const { return recorder_; }
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Runtime invariant auditing attachment point (sim/audit.hpp). Like the
  /// recorder, the engine only carries the pointer; null disables auditing.
  Auditor* auditor() const { return auditor_; }
  void set_auditor(Auditor* auditor) { auditor_ = auditor; }

 private:
  /// Awaiter for sleep()/sleep_until(). Holds a liveness-guarded WaitRecord
  /// like every other blocking site: a coroutine destroyed mid-sleep marks
  /// the record dead and the engine drops the queued wakeup instead of
  /// resuming a freed frame (counted in cancelled_wakeups()).
  struct SleepAwaiter {
    Engine* engine;
    SimTime wake_at;
    WaitRef rec{};
    SleepAwaiter(Engine* e, SimTime t) : engine(e), wake_at(t) {}
    SleepAwaiter(const SleepAwaiter&) = delete;
    SleepAwaiter& operator=(const SleepAwaiter&) = delete;
    ~SleepAwaiter() {
      if (rec && !rec->resumed) rec->alive = false;
    }
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() noexcept {
      if (rec) rec->resumed = true;
    }
  };

  friend class JoinHandle;

  SimTime now_ = 0;
  std::uint64_t current_span_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t cancelled_wakeups_ = 0;
  std::size_t live_tasks_ = 0;
  std::size_t queue_depth_hw_ = 0;
  int run_depth_ = 0;  ///< only the outermost run() accumulates profile time
  obs::Recorder* recorder_ = nullptr;
  Auditor* auditor_ = nullptr;
  obs::SelfProfiler* profiler_ = nullptr;
  // Declared before queue_: guards held by still-queued events release their
  // pool references during ~queue_, so the pool must outlive the queue.
  WaitPool wait_pool_;
  CalendarQueue queue_;
};

}  // namespace vmstorm::sim
