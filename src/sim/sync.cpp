#include "sim/sync.hpp"

namespace vmstorm::sim {

Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks) {
  std::vector<JoinHandle> handles;
  handles.reserve(tasks.size());
  for (auto& t : tasks) handles.push_back(engine.spawn(std::move(t)));
  tasks.clear();
  for (auto& h : handles) co_await h.join(engine);
}

namespace {
Task<void> gated(Semaphore* gate, Task<void> inner) {
  co_await gate->acquire();
  struct Release {
    Semaphore* gate;
    ~Release() { gate->release(); }
  } release{gate};
  co_await std::move(inner);
}
}  // namespace

Task<void> when_all_limited(Engine& engine, std::vector<Task<void>> tasks,
                            std::size_t limit) {
  Semaphore gate(engine, limit == 0 ? 1 : limit, "sim.gate");
  std::vector<JoinHandle> handles;
  handles.reserve(tasks.size());
  for (auto& t : tasks) handles.push_back(engine.spawn(gated(&gate, std::move(t))));
  tasks.clear();
  for (auto& h : handles) co_await h.join(engine);
}

}  // namespace vmstorm::sim
