// Lazy coroutine task type for simulation processes.
//
// Task<T> is a single-consumer, lazily-started coroutine: nothing runs until
// the task is co_awaited (or handed to Engine::spawn). Completion resumes the
// awaiter via symmetric transfer, so arbitrarily deep task chains use O(1)
// stack. Exceptions propagate to the awaiter.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace vmstorm::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Releases ownership of the coroutine frame (used by Engine::spawn's
  /// detached wrapper, which keeps the Task object alive in its own frame).
  Handle release() { return std::exchange(handle_, {}); }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // symmetric transfer: start the awaited task
    }
    T await_resume() {
      auto& p = handle.promise();
      if (p.exception) std::rethrow_exception(p.exception);
      if constexpr (!std::is_void_v<T>) {
        assert(p.value.has_value());
        return std::move(*p.value);
      }
    }
  };

  Awaiter operator co_await() && { return Awaiter{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace vmstorm::sim
