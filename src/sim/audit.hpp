// Runtime invariant auditing for the simulator.
//
// vmlint proves what it can statically (no discarded Tasks, no unguarded
// waiter schedules); the Auditor checks what only a running simulation can
// show: that every wakeup delivered to a coroutine finds its waiter alive,
// that every dropped wakeup really had a dead waiter behind it, and that
// simulated time never moves backwards. The engine and the wake paths in
// sim/causal.hpp call these hooks; with no auditor attached (the default)
// every hook site is a null-pointer check, so production simulations pay
// one branch per event.
//
// The fuzz harness (tests/fuzz/) attaches an InvariantAuditor while driving
// randomized spawn/cancel/wakeup interleavings; shrunk failures become
// regression tests in tests/sim/fuzz_regressions_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vmstorm::sim {

/// Thrown by InvariantAuditor in fail-fast mode. Dead-waiter resumption is
/// detected *before* the engine resumes the handle, so failing fast here
/// turns a use-after-free into a clean, catchable failure the shrinker can
/// replay deterministically.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Observer interface over the engine's wakeup lifecycle. Attach with
/// Engine::set_auditor before running; all hooks default to no-ops.
class Auditor {
 public:
  virtual ~Auditor() = default;

  /// A WaitRecord-guarded wakeup was enqueued as event `seq`
  /// (sim/causal.hpp wake_waiter, Engine sleep suspension). The WaitRef
  /// pins the pooled record (and its generation) until dispatch.
  virtual void on_wakeup_scheduled(std::uint64_t seq, WaitRef rec) {
    (void)seq;
    (void)rec;
  }

  /// Event `seq` reached the head of the queue at simulated time `time`.
  /// `dropped` is true when the engine discarded it because its liveness
  /// guard read false; otherwise the handle is resumed right after this
  /// hook returns.
  virtual void on_event(std::uint64_t seq, SimTime time, bool dropped) {
    (void)seq;
    (void)time;
    (void)dropped;
  }
};

/// The runtime invariant oracles the fuzz harness checks on every program:
///
///   dead-waiter-resumption  an event about to be resumed maps to a
///                           WaitRecord whose waiter was destroyed — the
///                           exact bug the alive_guard machinery exists to
///                           prevent (e.g. a guard dropped from a wake path);
///   live-waiter-drop        the engine dropped a wakeup whose record still
///                           reads alive (a lost wakeup);
///   monotone-time           event dispatch times never decrease.
///
/// dropped_wakeups() counts guarded drops seen through the hooks; at
/// quiescence it must equal Engine::cancelled_wakeups(), and
/// pending_wakeups() must be zero (every scheduled wakeup was dispatched).
class InvariantAuditor final : public Auditor {
 public:
  /// Throw InvariantViolation at the detection site (default). The harness
  /// relies on this for dead-waiter resumption: the throw unwinds out of
  /// Engine::run before the dead frame would be resumed.
  bool fail_fast = true;

  /// Bound on retained violation messages. Past it, the newest message
  /// overwrites the last slot (first kMaxViolations-1 plus the most recent
  /// survive); violations_total() keeps the true count.
  static constexpr std::size_t kMaxViolations = 64;

  void on_wakeup_scheduled(std::uint64_t seq, WaitRef rec) override {
    // Open-addressed slot pool: steady-state inserts touch existing slots
    // only, so the auditor adds no per-event allocation on the engine's hot
    // path (growth uses the sanctioned construct+move+swap idiom).
    if ((occupied_ + 1) * 2 > slots_.size()) rehash();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(seq) & mask;
    while (slots_[i].state == PendingSlot::kUsed) i = (i + 1) & mask;
    if (slots_[i].state != PendingSlot::kTombstone) ++occupied_;
    slots_[i].seq = seq;
    slots_[i].state = PendingSlot::kUsed;
    slots_[i].rec = std::move(rec);
    ++pending_count_;
  }

  void on_event(std::uint64_t seq, SimTime time, bool dropped) override {
    ++events_seen_;
    if (time < last_time_) {
      fail("monotone-time: event seq " + std::to_string(seq) + " at " +
           std::to_string(time) + "ns after " + std::to_string(last_time_) +
           "ns");
    }
    last_time_ = time;
    WaitRef rec;
    if (!take(seq, rec)) return;  // plain event, no wait record to audit
    if (dropped) {
      ++dropped_wakeups_;
      if (rec->alive) {
        fail("live-waiter-drop: wakeup seq " + std::to_string(seq) +
             " dropped but its waiter is alive");
      }
    } else if (!rec->alive) {
      fail("dead-waiter-resumption: wakeup seq " + std::to_string(seq) +
           " about to resume a destroyed waiter");
    }
  }

  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t dropped_wakeups() const { return dropped_wakeups_; }
  std::size_t pending_wakeups() const { return pending_count_; }

  /// Violations raised so far, including any whose message was overwritten
  /// once the retained buffer filled.
  std::uint64_t violations_total() const { return violation_count_; }

  /// Retained violation messages, oldest first (bounded by kMaxViolations).
  std::vector<std::string> violations() const {
    const std::size_t n = violation_count_ < kMaxViolations
                              ? static_cast<std::size_t>(violation_count_)
                              : kMaxViolations;
    return std::vector<std::string>(violations_, violations_ + n);
  }

 private:
  struct PendingSlot {
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kUsed = 1;
    static constexpr std::uint8_t kTombstone = 2;
    std::uint64_t seq = 0;
    std::uint8_t state = kEmpty;
    WaitRef rec;
  };

  /// splitmix64 finalizer — sequence numbers are consecutive, so identity
  /// hashing would cluster linear probes.
  static std::uint64_t hash(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Grows (power of two) and reinserts live entries, clearing tombstones.
  void rehash() {
    std::size_t next = slots_.empty() ? 64 : slots_.size();
    while ((pending_count_ + 1) * 2 > next) next *= 2;
    std::vector<PendingSlot> bigger(next);
    const std::size_t mask = next - 1;
    for (PendingSlot& s : slots_) {
      if (s.state != PendingSlot::kUsed) continue;
      std::size_t i = hash(s.seq) & mask;
      while (bigger[i].state == PendingSlot::kUsed) i = (i + 1) & mask;
      bigger[i].seq = s.seq;
      bigger[i].state = PendingSlot::kUsed;
      bigger[i].rec = std::move(s.rec);
    }
    slots_.swap(bigger);
    occupied_ = pending_count_;
  }

  /// Removes seq's record into `out`; leaves a tombstone so later probe
  /// chains stay intact. False when seq was never a guarded wakeup.
  bool take(std::uint64_t seq, WaitRef& out) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(seq) & mask;
    while (slots_[i].state != PendingSlot::kEmpty) {
      if (slots_[i].state == PendingSlot::kUsed && slots_[i].seq == seq) {
        out = std::move(slots_[i].rec);
        slots_[i].rec.reset();
        slots_[i].state = PendingSlot::kTombstone;
        --pending_count_;
        return true;
      }
      i = (i + 1) & mask;
    }
    return false;
  }

  void fail(std::string msg) {
    const std::size_t slot =
        violation_count_ < kMaxViolations
            ? static_cast<std::size_t>(violation_count_)
            : kMaxViolations - 1;
    violations_[slot] = std::move(msg);
    ++violation_count_;
    if (fail_fast) throw InvariantViolation(violations_[slot]);
  }

  std::vector<PendingSlot> slots_;
  std::size_t occupied_ = 0;       ///< used + tombstone slots
  std::size_t pending_count_ = 0;  ///< used slots only
  SimTime last_time_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t dropped_wakeups_ = 0;
  std::uint64_t violation_count_ = 0;
  std::string violations_[kMaxViolations];
};

}  // namespace vmstorm::sim
