// Runtime invariant auditing for the simulator.
//
// vmlint proves what it can statically (no discarded Tasks, no unguarded
// waiter schedules); the Auditor checks what only a running simulation can
// show: that every wakeup delivered to a coroutine finds its waiter alive,
// that every dropped wakeup really had a dead waiter behind it, and that
// simulated time never moves backwards. The engine and the wake paths in
// sim/causal.hpp call these hooks; with no auditor attached (the default)
// every hook site is a null-pointer check, so production simulations pay
// one branch per event.
//
// The fuzz harness (tests/fuzz/) attaches an InvariantAuditor while driving
// randomized spawn/cancel/wakeup interleavings; shrunk failures become
// regression tests in tests/sim/fuzz_regressions_test.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vmstorm::sim {

/// Thrown by InvariantAuditor in fail-fast mode. Dead-waiter resumption is
/// detected *before* the engine resumes the handle, so failing fast here
/// turns a use-after-free into a clean, catchable failure the shrinker can
/// replay deterministically.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Observer interface over the engine's wakeup lifecycle. Attach with
/// Engine::set_auditor before running; all hooks default to no-ops.
class Auditor {
 public:
  virtual ~Auditor() = default;

  /// A WaitRecord-guarded wakeup was enqueued as event `seq`
  /// (sim/causal.hpp wake_waiter, Engine sleep suspension).
  virtual void on_wakeup_scheduled(std::uint64_t seq,
                                   std::shared_ptr<const WaitRecord> rec) {
    (void)seq;
    (void)rec;
  }

  /// Event `seq` reached the head of the queue at simulated time `time`.
  /// `dropped` is true when the engine discarded it because its liveness
  /// guard read false; otherwise the handle is resumed right after this
  /// hook returns.
  virtual void on_event(std::uint64_t seq, SimTime time, bool dropped) {
    (void)seq;
    (void)time;
    (void)dropped;
  }
};

/// The runtime invariant oracles the fuzz harness checks on every program:
///
///   dead-waiter-resumption  an event about to be resumed maps to a
///                           WaitRecord whose waiter was destroyed — the
///                           exact bug the alive_guard machinery exists to
///                           prevent (e.g. a guard dropped from a wake path);
///   live-waiter-drop        the engine dropped a wakeup whose record still
///                           reads alive (a lost wakeup);
///   monotone-time           event dispatch times never decrease.
///
/// dropped_wakeups() counts guarded drops seen through the hooks; at
/// quiescence it must equal Engine::cancelled_wakeups(), and
/// pending_wakeups() must be zero (every scheduled wakeup was dispatched).
class InvariantAuditor final : public Auditor {
 public:
  /// Throw InvariantViolation at the detection site (default). The harness
  /// relies on this for dead-waiter resumption: the throw unwinds out of
  /// Engine::run before the dead frame would be resumed.
  bool fail_fast = true;

  void on_wakeup_scheduled(std::uint64_t seq,
                           std::shared_ptr<const WaitRecord> rec) override {
    // vmlint:allow(hot-path-alloc) the auditor is installed only by fuzz and
    // invariant tests, never on measured runs; bookkeeping cost is the point.
    pending_.emplace(seq, std::move(rec));
  }

  void on_event(std::uint64_t seq, SimTime time, bool dropped) override {
    ++events_seen_;
    if (time < last_time_) {
      fail("monotone-time: event seq " + std::to_string(seq) + " at " +
           std::to_string(time) + "ns after " + std::to_string(last_time_) +
           "ns");
    }
    last_time_ = time;
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // plain event, no wait record to audit
    std::shared_ptr<const WaitRecord> rec = std::move(it->second);
    pending_.erase(it);
    if (dropped) {
      ++dropped_wakeups_;
      if (rec->alive) {
        fail("live-waiter-drop: wakeup seq " + std::to_string(seq) +
             " dropped but its waiter is alive");
      }
    } else if (!rec->alive) {
      fail("dead-waiter-resumption: wakeup seq " + std::to_string(seq) +
           " about to resume a destroyed waiter");
    }
  }

  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t dropped_wakeups() const { return dropped_wakeups_; }
  std::size_t pending_wakeups() const { return pending_.size(); }
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void fail(std::string msg) {
    // vmlint:allow(hot-path-alloc) invariant-violation path: the run is
    // already failing, allocation cost is irrelevant.
    violations_.push_back(std::move(msg));
    if (fail_fast) throw InvariantViolation(violations_.back());
  }

  std::map<std::uint64_t, std::shared_ptr<const WaitRecord>> pending_;
  SimTime last_time_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t dropped_wakeups_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace vmstorm::sim
