#include "sim/wait_pool.hpp"

namespace vmstorm::sim {

WaitRef WaitPool::make(std::coroutine_handle<> h, std::uint64_t span,
                       double wait_since) {
  const std::uint32_t slot = alloc_slot();
  WaitRecord& rec = slots_[slot].rec;
  rec.handle = h;
  rec.alive = true;
  rec.resumed = false;
  rec.granted = false;
  rec.span = span;
  rec.waker_span = 0;
  rec.flow = 0;
  rec.wait_since = wait_since;
  ++created_;
  ++live_;
  if (live_ > live_hw_) live_hw_ = live_;
  return WaitRef{this, slot};
}

void WaitPool::recycle(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // stale guards to this slot are void from here on
  s.rec = WaitRecord{};
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

std::uint32_t WaitPool::alloc_slot() {
  if (free_head_ == kNoSlot) grow();
  const std::uint32_t slot = free_head_;
  free_head_ = slots_[slot].next_free;
  slots_[slot].next_free = kNoSlot;
  return slot;
}

void WaitPool::grow() {
  // Double the slab with the construct+move+swap idiom (the one growth form
  // sanctioned on hot paths — see tools/vmlint/rules/hot_path_alloc.py) and
  // thread the fresh slots onto the free list.
  const std::size_t old_size = slots_.size();
  const std::size_t new_size = old_size == 0 ? 64 : old_size * 2;
  std::vector<Slot> bigger(new_size);
  for (std::size_t i = 0; i < old_size; ++i) bigger[i] = std::move(slots_[i]);
  slots_.swap(bigger);
  for (std::size_t i = new_size; i-- > old_size;) {
    slots_[i].next_free = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
}

}  // namespace vmstorm::sim
