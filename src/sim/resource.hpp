// Rate-limited FIFO resources: the queueing building block for NICs and
// disks.
//
// A FifoServer serializes requests: a request of n bytes arriving at time t
// starts at max(t, busy_until) and holds the server for overhead + n/rate.
// With chunk-sized requests this is a store-and-forward model — exactly the
// granularity at which the paper's transfers contend (256 KB chunks).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/causal.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace vmstorm::sim {

class FifoServer {
 public:
  /// rate: bytes per second of service; fixed_overhead: per-request setup
  /// time (e.g. protocol/latency overhead paid inside the server).
  FifoServer(Engine& engine, BytesPerSecond rate, SimTime fixed_overhead = 0)
      : engine_(&engine), rate_(rate), fixed_overhead_(fixed_overhead) {}

  /// Labels the server's trace output. While the engine's tracer is live,
  /// every request leaves a "svc" cost event for its service interval and a
  /// "wait" cost event for any time queued behind earlier requests (holder =
  /// the span whose request it queued behind). Unlabeled servers trace
  /// nothing.
  void set_trace(const char* name, std::uint32_t lane) {
    trace_name_ = name;
    trace_lane_ = lane;
  }

  /// Serves a request of `bytes`; completes when the transfer would finish.
  Task<void> serve(Bytes bytes) { return serve_with_overhead(bytes, fixed_overhead_); }

  Task<void> serve_with_overhead(Bytes bytes, SimTime overhead) {
    const SimTime arrival = engine_->now();
    const SimTime start = busy_until_ > arrival ? busy_until_ : arrival;
    const SimTime wait = start - arrival;
    total_queue_wait_ += wait;
    if (wait > max_queue_wait_) max_queue_wait_ = wait;
    const SimTime duration = overhead + service_time(bytes);
    busy_until_ = start + duration;
    busy_time_ += duration;
    bytes_served_ += bytes;
    ++requests_;
    ++inflight_;
    if (inflight_ > inflight_hw_) inflight_hw_ = inflight_;
    if (trace_name_ != nullptr) {
      if (obs::Tracer* tr = live_tracer(*engine_)) {
        const std::uint64_t span = engine_->current_span();
        if (wait > 0) {
          tr->complete_in(to_seconds(arrival), to_seconds(wait), trace_lane_,
                          "wait", trace_name_, span,
                          {obs::TraceArg::uint("holder", last_holder_)});
        }
        tr->complete_in(to_seconds(start), to_seconds(duration), trace_lane_,
                        "svc", trace_name_, span,
                        {obs::TraceArg::uint("bytes", bytes)});
        last_holder_ = span;
      }
    }
    co_await engine_->sleep_until(busy_until_);
    --inflight_;
  }

  /// Service time for n bytes, excluding queueing and overhead.
  SimTime service_time(Bytes bytes) const {
    return rate_ > 0.0 ? from_seconds(static_cast<double>(bytes) / rate_) : 0;
  }

  /// Time at which the server becomes idle (>= now if busy).
  SimTime busy_until() const { return busy_until_; }

  /// Queue delay a request arriving now would see before service begins.
  SimTime backlog() const {
    const SimTime now = engine_->now();
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  BytesPerSecond rate() const { return rate_; }
  Bytes bytes_served() const { return bytes_served_; }
  std::uint64_t requests() const { return requests_; }
  SimTime busy_time() const { return busy_time_; }

  /// Total/maximum time requests spent queued before service began.
  SimTime total_queue_wait() const { return total_queue_wait_; }
  SimTime max_queue_wait() const { return max_queue_wait_; }

  /// Requests between arrival and completion right now (queued or in
  /// service) and the high-water mark over the server's lifetime — the
  /// queue-depth signal the timeline sampler and the per-provider skew
  /// gauges read. Pure arithmetic on the existing analytic model: no
  /// request objects are materialized.
  std::uint64_t inflight() const { return inflight_; }
  std::uint64_t inflight_high_water() const { return inflight_hw_; }

 private:
  Engine* engine_;
  BytesPerSecond rate_;
  SimTime fixed_overhead_;
  const char* trace_name_ = nullptr;
  std::uint32_t trace_lane_ = 0;
  std::uint64_t last_holder_ = 0;  ///< span whose request last held the server
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  SimTime total_queue_wait_ = 0;
  SimTime max_queue_wait_ = 0;
  Bytes bytes_served_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t inflight_ = 0;
  std::uint64_t inflight_hw_ = 0;
};

}  // namespace vmstorm::sim
