// Rate-limited FIFO resources: the queueing building block for NICs and
// disks.
//
// A FifoServer serializes requests: a request of n bytes arriving at time t
// starts at max(t, busy_until) and holds the server for overhead + n/rate.
// With chunk-sized requests this is a store-and-forward model — exactly the
// granularity at which the paper's transfers contend (256 KB chunks).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace vmstorm::sim {

class FifoServer {
 public:
  /// rate: bytes per second of service; fixed_overhead: per-request setup
  /// time (e.g. protocol/latency overhead paid inside the server).
  FifoServer(Engine& engine, BytesPerSecond rate, SimTime fixed_overhead = 0)
      : engine_(&engine), rate_(rate), fixed_overhead_(fixed_overhead) {}

  /// Serves a request of `bytes`; completes when the transfer would finish.
  Task<void> serve(Bytes bytes) { return serve_with_overhead(bytes, fixed_overhead_); }

  Task<void> serve_with_overhead(Bytes bytes, SimTime overhead) {
    const SimTime arrival = engine_->now();
    const SimTime start = busy_until_ > arrival ? busy_until_ : arrival;
    const SimTime wait = start - arrival;
    total_queue_wait_ += wait;
    if (wait > max_queue_wait_) max_queue_wait_ = wait;
    const SimTime duration = overhead + service_time(bytes);
    busy_until_ = start + duration;
    busy_time_ += duration;
    bytes_served_ += bytes;
    ++requests_;
    co_await engine_->sleep_until(busy_until_);
  }

  /// Service time for n bytes, excluding queueing and overhead.
  SimTime service_time(Bytes bytes) const {
    return rate_ > 0.0 ? from_seconds(static_cast<double>(bytes) / rate_) : 0;
  }

  /// Time at which the server becomes idle (>= now if busy).
  SimTime busy_until() const { return busy_until_; }

  /// Queue delay a request arriving now would see before service begins.
  SimTime backlog() const {
    const SimTime now = engine_->now();
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  BytesPerSecond rate() const { return rate_; }
  Bytes bytes_served() const { return bytes_served_; }
  std::uint64_t requests() const { return requests_; }
  SimTime busy_time() const { return busy_time_; }

  /// Total/maximum time requests spent queued before service began.
  SimTime total_queue_wait() const { return total_queue_wait_; }
  SimTime max_queue_wait() const { return max_queue_wait_; }

 private:
  Engine* engine_;
  BytesPerSecond rate_;
  SimTime fixed_overhead_;
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  SimTime total_queue_wait_ = 0;
  SimTime max_queue_wait_ = 0;
  Bytes bytes_served_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace vmstorm::sim
