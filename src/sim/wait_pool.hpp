// Pooled, generation-stamped wait records.
//
// Every blocking site in the simulator parks a WaitRecord while its coroutine
// is suspended. The bench_scale profile (PR 7) showed the per-wait
// std::make_shared<WaitRecord> — one heap allocation plus one control block
// per suspension, millions per run at 10k instances — as a top hot-path
// allocation source, so records now live in a slab pool owned by the Engine:
//
//   WaitPool   slab of slots with a LIFO free list. The slab grows by the
//              sanctioned construct+move+swap idiom so the growth path stays
//              out of vmlint's hot-path-alloc findings, and the pool carries
//              the engine's wait-record telemetry (created / live / live
//              high-water) with semantics identical to the shared_ptr era:
//              a record counts as live from make() until its last reference
//              drops.
//   WaitRef    intrusive-refcounted handle to a slot; the drop-to-zero of
//              the last WaitRef (or owning WaitGuard) recycles the slot,
//              exactly mirroring the shared_ptr lifetime it replaces, so the
//              sim.wait_records_live gauge keeps byte-identical values.
//   WaitGuard  liveness guard passed to Engine::schedule_at. It owns a
//              reference — pinning the slot while the wakeup is in flight —
//              and additionally carries the slot's generation stamp.
//
// The generation stamp is the pool's core safety invariant: releasing a slot
// back to the free list bumps its generation, so a stale guard can never read
// a recycled slot as its (long-dead) original waiter — the dynamic twin of
// vmlint's unguarded-waiter rule and the auditor's dead-waiter oracle.
// tests/sim/wait_pool_test.cpp locks the invariant in.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>
#include <vector>

namespace vmstorm::sim {

class WaitPool;
class WaitRef;

/// Liveness record for a suspended waiter. Waiter lists (Event, Semaphore,
/// Channel, JoinState, storage::Disk) store WaitRefs to these instead of raw
/// coroutine handles so a coroutine destroyed while suspended is never
/// resumed: the awaiter's destructor flips `alive`, the wake path skips dead
/// records, and the engine re-checks the guard before resuming an
/// already-queued wakeup.
struct WaitRecord {
  std::coroutine_handle<> handle{};
  bool alive = true;    ///< false once the waiting coroutine frame is gone
  bool resumed = false; ///< set by await_resume: the wakeup was delivered
  bool granted = false; ///< a permit/item was handed over with the wakeup
  std::uint64_t span = 0;        ///< waiter's span context, restored on wake
  std::uint64_t waker_span = 0;  ///< span that released us (wait-edge holder)
  std::uint64_t flow = 0;        ///< open Chrome flow arrow id (0 = none)
  double wait_since = 0;         ///< simulated seconds at suspension
};

/// Free-list slab pool of WaitRecords; see file comment. Owned by the Engine
/// (constructible standalone for tests). Not copyable: WaitRefs hold raw
/// pointers back into it.
class WaitPool {
 public:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  WaitPool() = default;
  WaitPool(const WaitPool&) = delete;
  WaitPool& operator=(const WaitPool&) = delete;

  /// Allocates a record (recycling a free slot when one exists), initialises
  /// its fields, and returns an owning handle. Counts toward created/live.
  WaitRef make(std::coroutine_handle<> h, std::uint64_t span,
               double wait_since);

  WaitRecord& record(std::uint32_t slot) { return slots_[slot].rec; }
  const WaitRecord& record(std::uint32_t slot) const {
    return slots_[slot].rec;
  }
  std::uint32_t generation(std::uint32_t slot) const {
    return slots_[slot].gen;
  }

  /// Generation-checked liveness read: true only when the slot still holds
  /// the generation the guard captured AND that record's waiter is alive. A
  /// recycled slot fails the generation check no matter what the new
  /// occupant's `alive` flag says.
  bool guard_alive(std::uint32_t slot, std::uint32_t gen) const {
    const Slot& s = slots_[slot];
    return s.gen == gen && s.rec.alive;
  }

  // Telemetry (pure functions of the seed, exported via the Engine).
  std::uint64_t created() const { return created_; }
  std::uint64_t live() const { return live_; }
  std::uint64_t live_high_water() const { return live_hw_; }
  /// Slab capacity (allocated slots, free or live) — pool-growth telemetry
  /// for tests; NOT part of the deterministic bench sim section.
  std::size_t capacity() const { return slots_.size(); }

 private:
  friend class WaitRef;
  friend class WaitGuard;

  struct Slot {
    WaitRecord rec{};
    std::uint32_t gen = 0;        ///< bumped on every release-to-free-list
    std::uint32_t refs = 0;       ///< live WaitRef + WaitGuard count
    std::uint32_t next_free = kNoSlot;
  };

  void add_ref(std::uint32_t slot) { ++slots_[slot].refs; }
  void release(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (--s.refs == 0) recycle(slot);
  }
  void recycle(std::uint32_t slot);
  std::uint32_t alloc_slot();
  void grow();

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t created_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t live_hw_ = 0;
};

/// Owning handle to a pooled WaitRecord; copy = add reference, destruction =
/// release (last release recycles the slot and bumps its generation). The
/// drop-in replacement for the former std::shared_ptr<WaitRecord>.
class WaitRef {
 public:
  WaitRef() = default;
  WaitRef(WaitPool* pool, std::uint32_t slot) : pool_(pool), slot_(slot) {
    if (pool_ != nullptr) pool_->add_ref(slot_);
  }
  WaitRef(const WaitRef& o) : pool_(o.pool_), slot_(o.slot_) {
    if (pool_ != nullptr) pool_->add_ref(slot_);
  }
  WaitRef(WaitRef&& o) noexcept : pool_(o.pool_), slot_(o.slot_) {
    o.pool_ = nullptr;
    o.slot_ = WaitPool::kNoSlot;
  }
  WaitRef& operator=(const WaitRef& o) {
    WaitRef tmp(o);
    swap(tmp);
    return *this;
  }
  WaitRef& operator=(WaitRef&& o) noexcept {
    WaitRef tmp(std::move(o));
    swap(tmp);
    return *this;
  }
  ~WaitRef() {
    if (pool_ != nullptr) pool_->release(slot_);
  }

  void swap(WaitRef& o) noexcept {
    std::swap(pool_, o.pool_);
    std::swap(slot_, o.slot_);
  }
  void reset() { WaitRef{}.swap(*this); }

  explicit operator bool() const { return pool_ != nullptr; }
  WaitRecord* operator->() const { return &pool_->record(slot_); }
  WaitRecord& operator*() const { return pool_->record(slot_); }
  WaitRecord* get() const {
    return pool_ == nullptr ? nullptr : &pool_->record(slot_);
  }

  WaitPool* pool() const { return pool_; }
  std::uint32_t slot() const { return slot_; }
  std::uint32_t generation() const { return pool_->generation(slot_); }

 private:
  WaitPool* pool_ = nullptr;
  std::uint32_t slot_ = WaitPool::kNoSlot;
};

/// Liveness guard over a pooled WaitRecord, the schedule_at counterpart of
/// the former aliasing shared_ptr<const bool>. Owns a reference (so a queued
/// wakeup pins its record, matching the old lifetime exactly) and captures
/// the slot's generation at construction; valid() re-checks both. Move-only:
/// a guard travels from the blocking site into the event queue and dies when
/// the wakeup is dispatched or dropped.
class WaitGuard {
 public:
  WaitGuard() = default;
  explicit WaitGuard(const WaitRef& ref)
      : ref_(ref), gen_(ref ? ref.generation() : 0) {}
  WaitGuard(const WaitGuard&) = delete;
  WaitGuard& operator=(const WaitGuard&) = delete;
  WaitGuard(WaitGuard&&) noexcept = default;
  WaitGuard& operator=(WaitGuard&&) noexcept = default;

  /// True when no guard was attached — the wakeup is unconditional.
  bool unconditional() const { return !ref_; }
  /// Generation-checked liveness: false for a dead waiter OR a stale stamp.
  bool valid() const { return ref_.pool()->guard_alive(ref_.slot(), gen_); }

 private:
  WaitRef ref_{};
  std::uint32_t gen_ = 0;
};

/// Builds the liveness guard for a record, suitable for passing to
/// Engine::schedule_at/schedule_after. Keeps the record alive until the
/// queued wakeup is consumed or dropped (the name is also the token vmlint's
/// unguarded-waiter rule looks for at schedule sites).
inline WaitGuard alive_guard(const WaitRef& rec) { return WaitGuard{rec}; }

}  // namespace vmstorm::sim
