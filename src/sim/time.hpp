// Simulated time. Integer nanoseconds for exact, platform-independent
// event ordering; helpers convert to/from seconds for reporting.
#pragma once

#include <cstdint>

namespace vmstorm::sim {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000 * 1000 * 1000;

inline constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / 1e9;
}

inline constexpr SimTime from_millis(double ms) { return from_seconds(ms * 1e-3); }
inline constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }

}  // namespace vmstorm::sim
