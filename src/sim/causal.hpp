// Causal-tracing hooks for the simulator: wait-edge recording and span
// handoff at wake sites.
//
// The primitives in sync.hpp / resource.hpp / storage::Disk call these
// helpers when a coroutine blocks on a shared resource and when the holder
// releases it. A resumed waiter leaves behind a "wait" cost event spanning
// the blocked interval, annotated with the span that held the resource, and
// a Chrome flow arrow from releaser to waiter when they belong to different
// spans. With no Recorder attached (or tracing disabled) every hook reduces
// to a null check — the simulation itself never branches on tracing, so
// enabling a tracer cannot change event order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>

#include "obs/recorder.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"

namespace vmstorm::sim {

/// The engine's tracer when a Recorder is attached and tracing is on,
/// else nullptr.
inline obs::Tracer* live_tracer(const Engine& engine) {
  obs::Recorder* rec = engine.recorder();
  return (rec != nullptr && rec->trace.enabled()) ? &rec->trace : nullptr;
}

/// Creates a pooled wait record for handle `h`, capturing the suspending
/// coroutine's span context and the time it blocked.
inline WaitRef make_wait_record(Engine& engine, std::coroutine_handle<> h) {
  return engine.wait_pool().make(h, engine.current_span(),
                                 engine.now_seconds());
}

/// Marks `rec` as released by the current span and schedules its wakeup,
/// restoring the waiter's own span context. Emits the 's' half of a Chrome
/// flow arrow when the releaser belongs to a different span (a genuine
/// cross-coroutine handoff).
inline void wake_waiter(Engine& engine, const WaitRef& rec) {
  rec->waker_span = engine.current_span();
  if (obs::Tracer* tr = live_tracer(engine)) {
    if (rec->waker_span != rec->span) {
      // The arrow belongs to the waiter's span tree: under sampling it is
      // kept or dropped with the waiter, never half-recorded.
      rec->flow = tr->flow_begin(engine.now_seconds(), 0, "wake", rec->span);
    }
  }
  const std::uint64_t seq =
      engine.schedule_after(0, rec->handle, alive_guard(rec), rec->span);
  if (Auditor* a = engine.auditor()) a->on_wakeup_scheduled(seq, rec);
}

/// Records the wait edge for a waiter that just resumed: the blocked
/// interval as a "wait" cost event with the holder's span, plus the 'f'
/// half of the flow arrow when one was opened. `resource` names the thing
/// waited on ("sim.semaphore", "disk.dirty", "mirror.inflight", ...).
inline void record_wait_edge(Engine& engine, const WaitRecord& rec,
                             const char* resource, std::uint32_t lane = 0) {
  obs::Tracer* tr = live_tracer(engine);
  if (tr == nullptr) return;
  const double now = engine.now_seconds();
  const double waited = now - rec.wait_since;
  if (waited > 0) {
    tr->complete_in(rec.wait_since, waited, lane, "wait", resource,
                    engine.current_span(),
                    {obs::TraceArg::uint("holder", rec.waker_span)});
  }
  if (rec.flow != 0) tr->flow_end(now, lane, "wake", rec.flow);
}

}  // namespace vmstorm::sim
