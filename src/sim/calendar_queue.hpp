// Calendar event queue with exact (time, seq) dispatch order.
//
// Replaces the engine's std::priority_queue (binary heap) on the dispatch
// hot path. A Brown calendar queue with a far-future overflow list: pending
// events within the current calendar "year" hash into power-of-two time
// buckets of width 2^shift nanoseconds, each bucket a sorted singly-linked
// list threaded through a slab of nodes (no per-event allocation — the slab
// and bucket array grow by the sanctioned construct+move+swap idiom,
// amortised and off the per-event path). Events at or beyond the year's end
// land on an unsorted overflow list in O(1) instead of stretching the
// buckets; when the ring drains, the year jumps straight to the earliest
// overflow event and everything inside the new year migrates into buckets.
// This keeps the classic calendar pathology (a bimodal pending set — dense
// near-future wakeups plus a cohort of long sleeps — forcing empty-year
// scans and cross-year bucket pileup) off both the enqueue and the peek
// path: near events are O(1) amortised tail appends, far events are O(1)
// list pushes, versus the heap's O(log n) for every one of them.
//
// Order contract — the whole point: dispatch order is EXACTLY ascending
// (time, seq), byte-identical to the heap it replaces. Equal times always
// land in the same bucket (bucket index is a pure function of time), so
// cross-bucket order is strictly by time and in-bucket order is (time, seq)
// by sorted insert; the globally increasing seq makes the common same-tick
// append an O(1) tail operation. Overflow events are all at least a year
// later than every ring event, so the ring minimum is the global minimum
// whenever the ring is nonempty and membership is maintained (migration on
// every forward year re-base). tests/sim/queue_diff_test.cpp proves the
// contract differentially against a reference heap over generated
// schedule/cancel/drop programs.
//
// Monotonicity contract: callers only enqueue times >= the last dequeued
// event's time (the engine schedules at t >= now_, and now_ only advances to
// dispatched-event times). The cursor leans on this — it never re-scans
// buckets behind the last pop. The one forward-looking exception (peek
// advanced the cursor to a far-future event, then a nearer event arrives
// before it is popped) is handled by the cached-minimum check in enqueue(),
// which re-bases the year at the newcomer's window (a full re-base, because
// the newcomer can be ahead of the old year base and the grown year may
// capture overflow events). Every path that parks
// the cursor ahead of the engine's clock leaves the cache set (peek's scan,
// the year jump, rebuild()), so the rewind check always has a comparison
// point — a nil cache with the cursor ahead would strand later enqueues
// behind it.
//
// Resize policy: grow (double buckets) when the ring holds more than
// 2 * nbuckets events, shrink (halve) when fewer than nbuckets / 8, floor
// kMinBuckets. Each rebuild re-picks the bucket width as the power of two
// nearest ring-span/ring-size — the overflow cohort deliberately does not
// stretch the width — then re-decides ring/overflow membership against the
// new year. Deterministic, so same-seed runs resize identically.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "sim/wait_pool.hpp"

namespace vmstorm::sim {

/// One queued coroutine resumption; what Engine::schedule_at enqueues.
/// Move-only: the guard owns a wait-record reference.
struct QueuedEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> handle{};
  std::uint64_t span = 0;  ///< span context restored on resume
  WaitGuard guard{};       ///< unconditional resumption when unarmed
};

class CalendarQueue {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  void enqueue(QueuedEvent&& ev);
  /// Pointer to the (time, seq)-minimum pending event, or nullptr when
  /// empty. Valid until the next enqueue/dequeue.
  const QueuedEvent* peek();
  /// Removes and returns the minimum. Precondition: !empty().
  QueuedEvent dequeue();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Resize telemetry for tests (deterministic, but not part of the bench
  // sim section).
  std::size_t bucket_count() const { return buckets_.size(); }
  unsigned bucket_shift() const { return shift_; }
  std::size_t overflow_count() const { return overflow_size_; }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr unsigned kMaxShift = 42;  // ~73-minute buckets at most

  struct Node {
    QueuedEvent ev{};
    std::uint32_t next = kNil;
  };
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  static bool before(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  std::size_t bucket_of(SimTime t) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >> shift_) &
           bucket_mask_;
  }
  /// Exclusive end of the one-bucket window containing t.
  SimTime window_end(SimTime t) const {
    return static_cast<SimTime>(
        ((static_cast<std::uint64_t>(t) >> shift_) + 1) << shift_);
  }

  std::uint32_t alloc_node();
  void grow_slab();
  void free_node(std::uint32_t idx);
  void link_into_bucket(std::uint32_t idx);
  void rebuild(std::size_t new_buckets);
  /// Earliest overflow node by (time, seq), kNil when the list is empty.
  std::uint32_t overflow_min() const;
  /// Re-bases the calendar year at t's window and migrates every overflow
  /// event inside the new year into the ring.
  void re_base(SimTime t);
  void reset_cursor_to(SimTime t) {
    cursor_ = bucket_of(t);
    cursor_limit_ = window_end(t);
    year_end_ = cursor_limit_ +
                static_cast<SimTime>(
                    static_cast<std::uint64_t>(buckets_.size() - 1) << shift_);
  }

  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  std::vector<Bucket> buckets_;
  unsigned shift_ = 20;            ///< bucket width = 2^shift_ ns (~1 ms)
  std::size_t bucket_mask_ = 0;
  std::size_t cursor_ = 0;         ///< bucket the scan is currently draining
  SimTime cursor_limit_ = 0;       ///< exclusive end of cursor's time window
  SimTime year_end_ = 0;  ///< exclusive end of the year; overflow beyond
  std::uint32_t cached_min_ = kNil;  ///< known-minimum node (kNil = unknown)
  std::uint32_t overflow_head_ = kNil;  ///< unsorted far-future list
  std::size_t size_ = 0;
  std::size_t ring_size_ = 0;      ///< events inside the bucket ring
  std::size_t overflow_size_ = 0;  ///< events on the overflow list
};

}  // namespace vmstorm::sim
