// Synchronization primitives for simulation processes.
//
// All primitives are single-threaded (the event loop is the only executor);
// "blocking" means suspending the coroutine until another process schedules
// it again via the engine queue. Wakeups are enqueued at the current
// simulated time rather than resumed inline, keeping execution order
// deterministic and re-entrancy-free.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vmstorm::sim {

/// One-shot broadcast event. set() wakes every current and future waiter.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_->schedule_after(0, h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : engine_(&engine), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // The permit is handed directly to the woken waiter.
      engine_->schedule_after(0, h);
    } else {
      ++count_;
    }
  }

  std::size_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine* engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded single-direction channel of T. Multiple producers, multiple
/// consumers (FIFO on both sides).
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}

  void push(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_->schedule_after(0, h);
    }
  }

  /// Awaitable pop; suspends until an item is available.
  Task<T> pop() {
    struct Awaiter {
      Channel* ch;
      bool await_ready() const noexcept { return !ch->items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    // Under multiple consumers a wakeup can race with another consumer; loop.
    while (items_.empty()) co_await Awaiter{this};
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  Engine* engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Spawns all tasks and waits for every one to finish. Exceptions from
/// children propagate (the first one encountered in join order).
Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks);

/// Runs tasks with at most `limit` in flight at once (FIFO admission).
Task<void> when_all_limited(Engine& engine, std::vector<Task<void>> tasks,
                            std::size_t limit);

}  // namespace vmstorm::sim
