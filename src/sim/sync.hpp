// Synchronization primitives for simulation processes.
//
// All primitives are single-threaded (the event loop is the only executor);
// "blocking" means suspending the coroutine until another process schedules
// it again via the engine queue. Wakeups are enqueued at the current
// simulated time rather than resumed inline, keeping execution order
// deterministic and re-entrancy-free.
//
// Cancellation safety: waiter lists hold pooled WaitRecord handles (WaitRef,
// sim/wait_pool.hpp), not raw coroutine handles. If a waiting coroutine is destroyed while suspended
// (its Task dropped mid-wait), the awaiter's destructor marks the record
// dead; wake paths skip dead records and the engine drops already-queued
// wakeups whose guard went dead. A Semaphore permit or Channel item that was
// already handed to a subsequently-destroyed waiter is passed on to the next
// live waiter instead of being lost. Primitives must outlive their waiters.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/causal.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vmstorm::sim {

namespace detail {

/// Creates a registered wait record for handle `h` at the back of `list`,
/// capturing the suspending coroutine's span context and block time.
template <typename List>
inline WaitRef enlist_waiter(List& list, Engine& engine,
                             std::coroutine_handle<> h) {
  WaitRef rec = make_wait_record(engine, h);
  // vmlint:allow(hot-path-alloc) waiter-list growth, one slot per blocked
  // coroutine; an intrusive through-the-pool list is the escape's exit path.
  list.push_back(rec);
  return rec;
}

/// Live (non-abandoned) records in a waiter list.
template <typename List>
inline std::size_t live_waiters(const List& list) {
  std::size_t n = 0;
  for (const auto& rec : list) {
    if (rec->alive) ++n;
  }
  return n;
}

}  // namespace detail

/// One-shot broadcast event. set() wakes every current and future waiter.
/// `trace_name` labels the wait edges this primitive records.
class Event {
 public:
  explicit Event(Engine& engine, const char* trace_name = "sim.event")
      : engine_(&engine), trace_name_(trace_name) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto& rec : waiters_) {
      if (rec->alive) wake_waiter(*engine_, rec);
    }
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      WaitRef rec;
      explicit Awaiter(Event* e) : ev(e) {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;
      ~Awaiter() {
        if (rec && !rec->resumed) rec->alive = false;
      }
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        rec = detail::enlist_waiter(ev->waiters_, *ev->engine_, h);
      }
      void await_resume() noexcept {
        if (!rec) return;
        rec->resumed = true;
        record_wait_edge(*ev->engine_, *rec, ev->trace_name_);
      }
    };
    return Awaiter{this};
  }

  std::size_t waiting() const { return detail::live_waiters(waiters_); }

 private:
  Engine* engine_;
  const char* trace_name_;
  bool set_ = false;
  std::vector<WaitRef> waiters_;
};

/// Counting semaphore with FIFO wakeup order. A waiter destroyed while
/// suspended is skipped; if a permit was already handed to it, the permit is
/// re-released so later waiters are not starved.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial,
            const char* trace_name = "sim.semaphore")
      : engine_(&engine), trace_name_(trace_name), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      WaitRef rec;
      explicit Awaiter(Semaphore* s) : sem(s) {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;
      ~Awaiter() {
        if (!rec || rec->resumed) return;
        rec->alive = false;
        // Destroyed with a permit already in flight to us: hand it on.
        if (rec->granted) sem->release();
      }
      bool await_ready() {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        rec = detail::enlist_waiter(sem->waiters_, *sem->engine_, h);
      }
      void await_resume() noexcept {
        if (!rec) return;
        rec->resumed = true;
        record_wait_edge(*sem->engine_, *rec, sem->trace_name_);
      }
    };
    return Awaiter{this};
  }

  void release() {
    while (!waiters_.empty()) {
      WaitRef rec = std::move(waiters_.front());
      waiters_.pop_front();
      if (!rec->alive) continue;  // waiter abandoned while queued
      // The permit is handed directly to the woken waiter.
      rec->granted = true;
      wake_waiter(*engine_, rec);
      return;
    }
    ++count_;
  }

  std::size_t available() const { return count_; }
  std::size_t waiting() const { return detail::live_waiters(waiters_); }

 private:
  Engine* engine_;
  const char* trace_name_;
  std::size_t count_;
  std::deque<WaitRef> waiters_;
};

/// Unbounded single-direction channel of T. Multiple producers, multiple
/// consumers (FIFO on both sides).
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine, const char* trace_name = "sim.channel")
      : engine_(&engine), trace_name_(trace_name) {}

  void push(T value) {
    // vmlint:allow(hot-path-alloc) unbounded channel buffer by design;
    // a fixed-capacity ring variant is the escape's exit path.
    items_.push_back(std::move(value));
    wake_one();
  }

  /// Awaitable pop; suspends until an item is available.
  Task<T> pop() {
    struct Awaiter {
      Channel* ch;
      WaitRef rec;
      explicit Awaiter(Channel* c) : ch(c) {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;
      ~Awaiter() {
        if (!rec || rec->resumed) return;
        rec->alive = false;
        // An item was already routed to us; wake another consumer for it.
        if (rec->granted && !ch->items_.empty()) ch->wake_one();
      }
      bool await_ready() const noexcept { return !ch->items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        rec = detail::enlist_waiter(ch->waiters_, *ch->engine_, h);
      }
      void await_resume() noexcept {
        if (!rec) return;
        rec->resumed = true;
        record_wait_edge(*ch->engine_, *rec, ch->trace_name_);
      }
    };
    // Under multiple consumers a wakeup can race with another consumer; loop.
    while (items_.empty()) co_await Awaiter{this};
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  void wake_one() {
    while (!waiters_.empty()) {
      WaitRef rec = std::move(waiters_.front());
      waiters_.pop_front();
      if (!rec->alive) continue;
      rec->granted = true;
      wake_waiter(*engine_, rec);
      return;
    }
  }

  Engine* engine_;
  const char* trace_name_;
  std::deque<T> items_;
  std::deque<WaitRef> waiters_;
};

/// Spawns all tasks and waits for every one to finish. Exceptions from
/// children propagate (the first one encountered in join order).
Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks);

/// Runs tasks with at most `limit` in flight at once (FIFO admission).
Task<void> when_all_limited(Engine& engine, std::vector<Task<void>> tasks,
                            std::size_t limit);

}  // namespace vmstorm::sim
