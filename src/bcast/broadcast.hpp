// Multicast-tree broadcast: the taktuk-equivalent used by the
// pre-propagation baseline (§5.2).
//
// Builds a k-ary multicast tree over [source, targets...] following the
// postal model (Bar-Noy & Kipnis [8]): interior nodes relay to their
// children. Two propagation disciplines are provided:
//
//  * kPipelined — data flows through the tree in chunk-sized messages;
//    a relay forwards each chunk as soon as it has it. Wall time
//    approaches one file transfer plus a depth-proportional ramp-up.
//  * kStoreAndForward — each hop receives the complete file before
//    forwarding (file-granularity staging). Wall time is proportional to
//    tree depth. This is the discipline that reproduces the paper's
//    measured taktuk times (see DESIGN.md/EXPERIMENTS.md: the published
//    Figure 4(b) prepropagation curve implies per-hop staging at an
//    ssh-bound effective rate rather than wire-speed streaming).
//
// Every receiving node also writes the image to its local disk, and the
// source reads it from its disk (the NFS server's), both potentially
// rate-limiting the pipeline.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/sync.hpp"
#include "storage/disk.hpp"

namespace vmstorm::bcast {

enum class Discipline { kPipelined, kStoreAndForward };

struct BroadcastConfig {
  Bytes chunk_size = 256_KiB;
  /// Tree arity (taktuk defaults to small arities; 2 balances source load
  /// against depth).
  std::size_t arity = 2;
  Discipline discipline = Discipline::kStoreAndForward;
  /// Effective per-hop application throughput. The paper's broadcast rode
  /// on ssh channels; single-stream ssh on 2011-era Xeons tops out well
  /// below wire speed. Calibrated so Fig. 4(b)'s prepropagation curve is
  /// reproduced (see EXPERIMENTS.md).
  BytesPerSecond hop_rate = mb_per_s(20.0);
};

struct BroadcastResult {
  double completion_seconds = 0;
  /// Completion time per target, indexed like `targets`.
  std::vector<double> per_target_seconds;
};

/// Broadcasts `total_bytes` from `source` to every node in `targets`.
/// `target_disks[i]` is target i's local disk (receives a full image copy);
/// `source_disk` is read once per child subtree stream.
sim::Task<void> broadcast(sim::Engine& engine, net::Network& network,
                          net::NodeId source, storage::Disk& source_disk,
                          std::vector<net::NodeId> targets,
                          std::vector<storage::Disk*> target_disks,
                          Bytes total_bytes, BroadcastConfig cfg,
                          BroadcastResult* result);

}  // namespace vmstorm::bcast
