#include "bcast/broadcast.hpp"

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "sim/resource.hpp"

namespace vmstorm::bcast {

namespace {

struct Ctx {
  sim::Engine* engine;
  net::Network* network;
  BroadcastConfig cfg;
  // nodes[0] is the source; nodes[1..] are the targets in input order.
  std::vector<net::NodeId> nodes;
  std::vector<storage::Disk*> disks;  // disks[0] = source disk
  // Per-node sender pacer: models the CPU-bound relay channel (ssh),
  // shared across all of a node's outgoing streams.
  std::vector<std::unique_ptr<sim::FifoServer>> pacers;
  Bytes total = 0;
  BroadcastResult* result = nullptr;

  std::uint64_t chunk_count() const {
    return (total + cfg.chunk_size - 1) / cfg.chunk_size;
  }
  Bytes chunk_bytes(std::uint64_t i) const {
    const Bytes base = i * cfg.chunk_size;
    return std::min<Bytes>(cfg.chunk_size, total - base);
  }
  static std::uint64_t chunk_key(std::uint64_t i) {
    return mix64(0xbcaa57ull ^ i);
  }
  void record(std::size_t node_idx) {
    // node_idx >= 1 (targets only).
    result->per_target_seconds[node_idx - 1] = engine->now_seconds();
    result->completion_seconds =
        std::max(result->completion_seconds, engine->now_seconds());
  }
};

/// One full-file hop: holder -> target, paced at the hop rate, with wire
/// accounting/occupancy and the target's disk write-back in flight.
sim::Task<void> sf_send(Ctx& ctx, std::size_t holder, std::size_t target) {
  std::vector<sim::JoinHandle> inflight;
  for (std::uint64_t c = 0; c < ctx.chunk_count(); ++c) {
    const Bytes sz = ctx.chunk_bytes(c);
    if (holder == 0) {
      // The source streams from the NFS server's disk (page-cached after
      // the first pass).
      co_await ctx.disks[0]->read(Ctx::chunk_key(c), sz);
    }
    co_await ctx.pacers[holder]->serve(sz);
    // Wire transfer + receiver disk write proceed concurrently with the
    // pacing of the next chunk (the pacer is the bottleneck).
    auto wire = [](Ctx& cx, std::size_t h, std::size_t t, std::uint64_t ci,
                   Bytes n) -> sim::Task<void> {
      co_await cx.network->transfer(cx.nodes[h], cx.nodes[t], n);
      co_await cx.disks[t]->write_async(n, Ctx::chunk_key(ci));
    }(ctx, holder, target, c, sz);
    inflight.push_back(ctx.engine->spawn(std::move(wire)));
  }
  for (auto& h : inflight) co_await h.join(*ctx.engine);
  ctx.record(target);
}

/// Store-and-forward binomial broadcast: in each round, every node holding
/// the complete file feeds one node that lacks it — ceil(log2(N+1)) rounds.
sim::Task<void> run_store_and_forward(Ctx& ctx) {
  std::vector<std::size_t> holders{0};
  std::size_t next = 1;
  while (next < ctx.nodes.size()) {
    const std::size_t n_new = std::min(holders.size(), ctx.nodes.size() - next);
    std::vector<sim::Task<void>> sends;
    for (std::size_t i = 0; i < n_new; ++i) {
      sends.push_back(sf_send(ctx, holders[i], next + i));
    }
    co_await sim::when_all(*ctx.engine, std::move(sends));
    for (std::size_t i = 0; i < n_new; ++i) holders.push_back(next + i);
    next += n_new;
  }
}

/// Pipelined k-ary tree: each node forwards chunk c to its children as soon
/// as it holds chunk c.
sim::Task<void> pipelined_node(Ctx& ctx, std::size_t idx,
                               std::vector<sim::Channel<int>*> chans) {
  const std::uint64_t chunks = ctx.chunk_count();
  for (std::uint64_t c = 0; c < chunks; ++c) {
    if (idx == 0) {
      co_await ctx.disks[0]->read(Ctx::chunk_key(c), ctx.chunk_bytes(c));
    } else {
      co_await chans[idx]->pop();
      co_await ctx.disks[idx]->write_async(ctx.chunk_bytes(c),
                                           Ctx::chunk_key(c));
      if (c + 1 == chunks) ctx.record(idx);
    }
    for (std::size_t k = 1; k <= ctx.cfg.arity; ++k) {
      const std::size_t child = idx * ctx.cfg.arity + k;
      if (child >= ctx.nodes.size()) break;
      const Bytes sz = ctx.chunk_bytes(c);
      co_await ctx.pacers[idx]->serve(sz);
      co_await ctx.network->transfer(ctx.nodes[idx], ctx.nodes[child], sz);
      chans[child]->push(static_cast<int>(c));
    }
  }
}

sim::Task<void> run_pipelined(Ctx& ctx) {
  std::vector<std::unique_ptr<sim::Channel<int>>> chan_store;
  std::vector<sim::Channel<int>*> chans;
  for (std::size_t i = 0; i < ctx.nodes.size(); ++i) {
    chan_store.push_back(std::make_unique<sim::Channel<int>>(*ctx.engine));
    chans.push_back(chan_store.back().get());
  }
  std::vector<sim::Task<void>> procs;
  for (std::size_t i = 0; i < ctx.nodes.size(); ++i) {
    procs.push_back(pipelined_node(ctx, i, chans));
  }
  co_await sim::when_all(*ctx.engine, std::move(procs));
}

}  // namespace

sim::Task<void> broadcast(sim::Engine& engine, net::Network& network,
                          net::NodeId source, storage::Disk& source_disk,
                          std::vector<net::NodeId> targets,
                          std::vector<storage::Disk*> target_disks,
                          Bytes total_bytes, BroadcastConfig cfg,
                          BroadcastResult* result) {
  Ctx ctx;
  ctx.engine = &engine;
  ctx.network = &network;
  ctx.cfg = cfg;
  ctx.nodes.push_back(source);
  ctx.disks.push_back(&source_disk);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ctx.nodes.push_back(targets[i]);
    ctx.disks.push_back(target_disks[i]);
  }
  for (std::size_t i = 0; i < ctx.nodes.size(); ++i) {
    ctx.pacers.push_back(
        std::make_unique<sim::FifoServer>(engine, cfg.hop_rate));
  }
  ctx.total = total_bytes;
  result->per_target_seconds.assign(targets.size(), 0.0);
  result->completion_seconds = 0.0;
  ctx.result = result;
  if (targets.empty()) co_return;
  if (cfg.discipline == Discipline::kStoreAndForward) {
    co_await run_store_and_forward(ctx);
  } else {
    co_await run_pipelined(ctx);
  }
}

}  // namespace vmstorm::bcast
