// The Recorder bundles the metrics registry and the tracer into the one
// object instrumented components reach through sim::Engine::recorder().
// A Cloud (or a test) owns a Recorder and attaches it to its engine before
// constructing the simulated components; components cache metric handles
// at construction and record through them on the hot path.
#pragma once

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace vmstorm::obs {

struct Recorder {
  Registry metrics;
  Tracer trace;
  Timeline timeline;
};

}  // namespace vmstorm::obs
