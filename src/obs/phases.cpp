#include "obs/phases.hpp"

#include <algorithm>
#include <cmath>

#include "obs/critpath.hpp"
#include "obs/json.hpp"

namespace vmstorm::obs {

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kIdle: return "idle";
    case Regime::kRepoBound: return "repo_bound";
    case Regime::kNetworkBound: return "network_bound";
    case Regime::kLocalDiskBound: return "local_disk_bound";
  }
  return "?";
}

namespace {

Regime classify(double repo, double net, double local, double idle_threshold) {
  if (repo < idle_threshold && net < idle_threshold && local < idle_threshold) {
    return Regime::kIdle;
  }
  // Argmax with enum-order tie-break: strictly-greater comparisons keep the
  // earlier regime on exact ties, so the decision is deterministic.
  Regime best = Regime::kRepoBound;
  double v = repo;
  if (net > v) {
    best = Regime::kNetworkBound;
    v = net;
  }
  if (local > v) best = Regime::kLocalDiskBound;
  return best;
}

}  // namespace

PhaseReport analyze_phases(const std::vector<double>& time,
                           const std::vector<double>& util_repo,
                           const std::vector<double>& util_net,
                           const std::vector<double>& util_local,
                           const PhaseOptions& opts) {
  PhaseReport r;
  const std::size_t n =
      std::min(std::min(time.size(), util_repo.size()),
               std::min(util_net.size(), util_local.size()));
  r.samples = n;
  if (n == 0) return r;
  const double cadence = opts.cadence_seconds > 0 ? opts.cadence_seconds : 0.25;
  r.start = time[0] - cadence;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = i == 0 ? cadence : time[i] - time[i - 1];
    if (dt <= 0) continue;  // duplicate timestamp: zero-length interval
    const Regime reg =
        classify(util_repo[i], util_net[i], util_local[i], opts.idle_threshold);
    r.totals[static_cast<std::size_t>(reg)] += dt;
    r.duration += dt;
    if (!r.segments.empty() && r.segments.back().regime == reg) {
      r.segments.back().seconds += dt;
    } else {
      PhaseSegment seg;
      seg.regime = reg;
      seg.start = time[i] - dt;
      seg.seconds = dt;
      r.segments.push_back(seg);
    }
  }
  return r;
}

std::string phases_json(const PhaseReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("regimes").begin_array();
  for (std::size_t i = 0; i < kRegimeCount; ++i) {
    w.value(regime_name(static_cast<Regime>(i)));
  }
  w.end_array();
  w.key("segments").begin_array();
  for (const PhaseSegment& s : report.segments) {
    w.begin_object();
    w.key("regime").value(regime_name(s.regime));
    w.key("start").value(s.start);
    w.key("seconds").value(s.seconds);
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  for (std::size_t i = 0; i < kRegimeCount; ++i) {
    w.key(regime_name(static_cast<Regime>(i))).value(report.totals[i]);
  }
  w.end_object();
  w.key("start").value(report.start);
  w.key("duration_seconds").value(report.duration);
  w.key("samples").value(static_cast<std::uint64_t>(report.samples));
  w.end_object();
  return w.take();
}

Status check_phase_report(const PhaseReport& report, double tolerance) {
  double total = 0;
  for (double t : report.totals) total += t;
  if (std::abs(total - report.duration) > tolerance) {
    return internal_error("phase totals do not sum to the analyzed duration");
  }
  double seg_sum = 0;
  double cursor = report.start;
  for (const PhaseSegment& s : report.segments) {
    if (std::abs(s.start - cursor) > tolerance) {
      return internal_error("phase segments are not contiguous");
    }
    cursor = s.start + s.seconds;
    seg_sum += s.seconds;
  }
  if (std::abs(seg_sum - report.duration) > tolerance) {
    return internal_error("phase segments do not cover the duration");
  }
  return Status::ok();
}

Status cross_check_attribution(const PhaseReport& report,
                               const CritReport& crit, double tolerance) {
  if (Status st = check_phase_report(report, tolerance); !st.is_ok()) {
    return st;
  }
  for (const CritRow& row : crit.rows) {
    double bucket_sum = 0;
    for (double b : row.buckets) bucket_sum += b;
    if (std::abs(bucket_sum - row.seconds) > tolerance) {
      return internal_error("attribution row buckets do not sum to its span");
    }
  }
  if (report.samples == 0 || crit.rows.empty()) return Status::ok();
  // The sampler covers the whole workload (its final sample lands on the
  // grid point after the last event), so every attributed root span must
  // fit the timeline window. Slack of one mean sample interval absorbs the
  // grid alignment at both edges.
  const double slack =
      report.samples > 0 ? 2.0 * report.duration / report.samples : 0.0;
  const double lo = report.start - slack;
  const double hi = report.start + report.duration + slack;
  for (const CritRow& row : crit.rows) {
    if (row.start < lo - tolerance ||
        row.start + row.seconds > hi + tolerance) {
      return internal_error(
          "attribution root span lies outside the timeline window");
    }
  }
  return Status::ok();
}

}  // namespace vmstorm::obs
