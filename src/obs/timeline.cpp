#include "obs/timeline.hpp"

#include <cassert>

#include "obs/json.hpp"

namespace vmstorm::obs {

void Timeline::configure(const TimelineConfig& cfg) {
  cfg_ = cfg;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  if (cfg_.cadence_seconds <= 0) cfg_.cadence_seconds = 0.25;
  samples_taken_ = 0;
  times_.assign(cfg_.capacity, 0.0);
  for (SeriesDef& s : series_) s.ring.assign(cfg_.capacity, 0.0);
}

Timeline::SeriesId Timeline::add_series(std::string name,
                                        TimelineLabels labels) {
  SeriesDef def;
  def.name = std::move(name);
  def.labels = std::move(labels);
  def.ring.assign(cfg_.capacity, 0.0);
  series_.push_back(std::move(def));
  if (times_.size() != cfg_.capacity) times_.assign(cfg_.capacity, 0.0);
  return series_.size() - 1;
}

Timeline::SeriesId Timeline::find_series(std::string_view name) const {
  for (SeriesId i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return i;
  }
  return series_.size();
}

void Timeline::begin_sample(double t) {
  const std::size_t slot =
      static_cast<std::size_t>(samples_taken_ % cfg_.capacity);
  times_[slot] = t;
  for (SeriesDef& s : series_) s.ring[slot] = 0.0;
  ++samples_taken_;
}

void Timeline::record(SeriesId id, double v) {
  assert(samples_taken_ > 0 && "record() before begin_sample()");
  const std::size_t slot =
      static_cast<std::size_t>((samples_taken_ - 1) % cfg_.capacity);
  series_[id].ring[slot] = v;
}

std::size_t Timeline::samples_retained() const {
  return samples_taken_ < cfg_.capacity
             ? static_cast<std::size_t>(samples_taken_)
             : cfg_.capacity;
}

std::vector<double> Timeline::times() const {
  const std::size_t n = samples_retained();
  const std::size_t start = ring_start();
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = times_[(start + i) % cfg_.capacity];
  }
  return out;
}

std::vector<double> Timeline::values(SeriesId id) const {
  const std::size_t n = samples_retained();
  const std::size_t start = ring_start();
  const SeriesDef& s = series_[id];
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s.ring[(start + i) % cfg_.capacity];
  }
  return out;
}

void Timeline::write_json(JsonWriter& w, std::string_view phases_raw) const {
  const std::size_t n = samples_retained();
  const std::size_t start = ring_start();
  w.begin_object();
  w.key("cadence_seconds").value(cfg_.cadence_seconds);
  w.key("samples").value(static_cast<std::uint64_t>(n));
  w.key("samples_taken").value(samples_taken_);
  w.key("dropped_samples").value(dropped_samples());
  w.key("time").begin_array();
  for (std::size_t i = 0; i < n; ++i) {
    w.value(times_[(start + i) % cfg_.capacity]);
  }
  w.end_array();
  w.key("series").begin_array();
  for (const SeriesDef& s : series_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("labels").begin_object();
    for (const auto& [k, v] : s.labels) w.key(k).value(v);
    w.end_object();
    w.key("values").begin_array();
    for (std::size_t i = 0; i < n; ++i) {
      w.value(s.ring[(start + i) % cfg_.capacity]);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (!phases_raw.empty()) {
    w.key("phases").raw(phases_raw);
  }
  w.end_object();
}

std::string Timeline::to_json(std::string_view phases_raw) const {
  JsonWriter w;
  write_json(w, phases_raw);
  return w.take();
}

void Timeline::clear() {
  samples_taken_ = 0;
  times_.assign(cfg_.capacity, 0.0);
  for (SeriesDef& s : series_) s.ring.assign(cfg_.capacity, 0.0);
}

}  // namespace vmstorm::obs
