// Metrics registry: labeled counters, gauges, exponential-bucket latency
// histograms and time-weighted gauges, with cheap handle-based recording.
//
// Usage pattern (the hot-path contract):
//   * at construction time a component asks the registry for handles once
//     (Counter&/Gauge&/ExpHistogram&) — a map lookup + possible insert;
//   * on the hot path it records through the handle — an increment or a
//     bucket bump, no strings, no locks (the simulator is single-threaded);
//   * at snapshot time Registry::to_json() walks every metric in key order
//     and serializes deterministically (same seed => byte-identical JSON).
//
// Handles are stable for the registry's lifetime (metrics are stored
// behind unique_ptr and never erased).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vmstorm::obs {

class JsonWriter;

/// Label set attached to a metric, e.g. {{"node","7"},{"dir","tx"}}.
/// Keys are sorted (and the metric key canonicalized) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

struct HistogramOptions {
  /// Upper bound of the first bucket. Defaults suit latencies in seconds:
  /// 1 µs first bucket, doubling, 48 buckets ≈ 1.4e8 s of range.
  double first_bound = 1e-6;
  double growth = 2.0;
  std::size_t buckets = 48;
};

/// Exponential-bucket histogram. Bucket i covers (bound(i-1), bound(i)]
/// with bound(i) = first_bound * growth^i; the last bucket is the
/// overflow. Exact count/sum/min/max are kept alongside the buckets.
class ExpHistogram {
 public:
  explicit ExpHistogram(HistogramOptions opts = HistogramOptions{});

  void record(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Percentile estimate (p in [0,100]): linear interpolation inside the
  /// bucket holding the rank, clamped to the observed [min, max].
  double percentile(double p) const;

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_bound(std::size_t i) const;  // upper bound of bucket i

 private:
  HistogramOptions opts_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Integrates a piecewise-constant value over (simulated) time — queue
/// depths, in-flight counts. Timestamps are supplied by the caller so the
/// type stays clock-agnostic and deterministic.
class TimeWeighted {
 public:
  /// The tracked value becomes `v` at time `t` (t must not decrease).
  void set(double t, double v);
  void add(double t, double dv) { set(t, value_ + dv); }

  double value() const { return value_; }
  double max() const { return max_; }
  double last_time() const { return last_t_; }

  /// Time average over [first set, t_end] (0 before any sample).
  double average(double t_end) const;

 private:
  double integral_ = 0;
  double start_t_ = 0;
  double last_t_ = 0;
  double value_ = 0;
  double max_ = 0;
  bool started_ = false;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  ExpHistogram& histogram(std::string_view name, const Labels& labels = {},
                          HistogramOptions opts = HistogramOptions{});
  TimeWeighted& time_weighted(std::string_view name, const Labels& labels = {});

  /// Host-side gauge: wall-clock timings, RSS — anything that varies run to
  /// run on the same seed. Kept in a separate scope that to_json() (the
  /// seed-deterministic export) never touches, so attaching host telemetry
  /// cannot break same-seed byte-identity. Export with host_json().
  Gauge& host_gauge(std::string_view name, const Labels& labels = {});

  /// Canonical metric key: name{k1=v1,k2=v2} with labels sorted by key.
  static std::string encode_key(std::string_view name, const Labels& labels);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           time_weighted_.size();
  }
  std::size_t host_size() const { return host_gauges_.size(); }

  /// Serializes every deterministic metric, grouped by kind, in key order:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"time_weighted":{...}}
  /// Host gauges are deliberately absent — see host_gauge().
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// Serializes the host-gauge scope only: {"host_gauges":{...}}.
  void write_host_json(JsonWriter& w) const;
  std::string host_json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ExpHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimeWeighted>> time_weighted_;
  std::map<std::string, std::unique_ptr<Gauge>> host_gauges_;
};

}  // namespace vmstorm::obs
