// Deterministic time-series recorder.
//
// The registry (obs/metrics.hpp) answers "what were the totals at the end
// of the run"; the Timeline answers "when did the load move". A background
// sampler task (Cloud::timeline_sampler) reads component state on a fixed
// simulated-time cadence and records one value per registered series per
// sample. Because the clock is the simulated one and the sampler is an
// ordinary engine task, the recorded series are a pure function of the
// seed: same seed, byte-identical export.
//
// Storage is ring-backed and preallocated: add_series()/configure() size
// every buffer up front (setup-time allocation), and begin_sample()/
// record() are plain indexed stores — no allocation on the sampling path,
// so the hot-path budget (tools/vmlint/hotpath_budget.txt) does not grow.
// When a run outlives the ring, the oldest samples are overwritten and
// counted in dropped_samples(); the retained window always ends at the
// final sample.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vmstorm::obs {

class JsonWriter;

struct TimelineConfig {
  /// Simulated seconds between samples.
  double cadence_seconds = 0.25;
  /// Samples retained per series (ring; oldest dropped past this).
  std::size_t capacity = 4096;
  /// Per-provider labeled series are registered for at most this many
  /// providers; larger fleets keep the aggregate series only, so a 10k-node
  /// run does not export 40k columns.
  std::size_t max_labeled_providers = 64;
};

/// Label set attached to a series (e.g. {{"provider", "3"}}). Insertion
/// order is preserved in the export.
using TimelineLabels = std::vector<std::pair<std::string, std::string>>;

class Timeline {
 public:
  using SeriesId = std::size_t;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Applies `cfg` and resizes every registered series' ring. Drops any
  /// recorded samples; call before sampling starts.
  void configure(const TimelineConfig& cfg);
  const TimelineConfig& config() const { return cfg_; }
  double cadence_seconds() const { return cfg_.cadence_seconds; }
  std::size_t capacity() const { return cfg_.capacity; }

  /// Registers a series and preallocates its ring. Setup-time only (the
  /// sampling path never registers). Returns the id record() takes.
  SeriesId add_series(std::string name, TimelineLabels labels = {});
  std::size_t series_count() const { return series_.size(); }
  const std::string& series_name(SeriesId id) const {
    return series_[id].name;
  }

  /// First series with `name` (any labels), or false via the out-param
  /// convention: returns series_count() when absent.
  SeriesId find_series(std::string_view name) const;

  /// Starts the sample at simulated time `t`: stamps the slot and zeroes
  /// every series' cell, so unrecorded series read 0 rather than a stale
  /// wrapped value. O(series), allocation-free.
  void begin_sample(double t);
  /// Sets series `id` in the current sample. Allocation-free.
  void record(SeriesId id, double v);

  /// Samples ever begun (monotone, includes overwritten ones).
  std::uint64_t samples_taken() const { return samples_taken_; }
  std::size_t samples_retained() const;
  std::uint64_t dropped_samples() const {
    return samples_taken_ > cfg_.capacity ? samples_taken_ - cfg_.capacity
                                          : 0;
  }

  /// Retained sample timestamps / values, oldest first (copies; export and
  /// analysis only).
  std::vector<double> times() const;
  std::vector<double> values(SeriesId id) const;

  /// The artifact `timeline` object. `phases_raw`, when non-empty, is
  /// emitted verbatim under the "phases" key (see obs/phases.hpp).
  std::string to_json(std::string_view phases_raw = {}) const;
  void write_json(JsonWriter& w, std::string_view phases_raw = {}) const;

  /// Drops recorded samples; series registrations and config survive.
  void clear();

 private:
  struct SeriesDef {
    std::string name;
    TimelineLabels labels;
    std::vector<double> ring;  // cfg_.capacity slots
  };

  // Retained window [start, start+n) in ring coordinates, oldest first.
  std::size_t ring_start() const {
    return samples_taken_ > cfg_.capacity
               ? static_cast<std::size_t>(samples_taken_ % cfg_.capacity)
               : 0;
  }

  bool enabled_ = false;
  TimelineConfig cfg_;
  std::uint64_t samples_taken_ = 0;
  std::vector<double> times_;  // cfg_.capacity slots
  std::vector<SeriesDef> series_;
};

}  // namespace vmstorm::obs
