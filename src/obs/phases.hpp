// Bottleneck-phase analyzer over timeline utilization series.
//
// The paper's deployment pipeline moves through distinct regimes: an early
// repository-bound burst (every instance faults its boot working set out of
// the striped image), a sustained network-bound plateau (NICs saturate
// while provider disks serve from cache), and — under snapshot write
// pressure — a local-disk-bound tail where the dirty-page budget throttles
// writers (the Fig. 5(a) effect). This analyzer segments a run into those
// regimes by comparing three contemporaneous utilization series sampled by
// obs::Timeline:
//
//   util.repo_disk   — mean busy fraction of the repository-role disks;
//   util.network     — mean busy fraction of all NICs;
//   util.local_disk  — dirty-page pressure (dirty bytes / budget), the
//                      write-back throttling signal.
//
// Each sample covers the cadence interval ending at its timestamp. A
// sample where every signal is below the idle threshold is `idle`;
// otherwise the regime is the argmax signal, ties broken by enum order so
// the segmentation is deterministic. Consecutive same-regime samples merge
// into segments; per-regime totals sum exactly to the analyzed duration by
// construction (each sample's interval is attributed to exactly one
// regime), which mirrors the critical-path analyzer's closed-bucket
// invariant and lets the two be cross-checked.
//
// Pure post-processing over exported series: the same code runs in-process
// (Cloud::timeline_json) and over a parsed artifact (vmstormctl timeline),
// producing identical segmentations.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace vmstorm::obs {

struct CritReport;

/// Bottleneck regime of one timeline interval. Order is the schema order
/// of the `totals` object and the argmax tie-break order.
enum class Regime {
  kIdle = 0,        ///< every signal below the idle threshold
  kRepoBound,       ///< repository disks are the contended resource
  kNetworkBound,    ///< NICs are the contended resource
  kLocalDiskBound,  ///< dirty-page budget throttles local write-back
};

inline constexpr std::size_t kRegimeCount = 4;

const char* regime_name(Regime r);

struct PhaseOptions {
  /// Signals below this are noise: a sample with all three under it is
  /// classified idle rather than crowned by a meaningless argmax.
  double idle_threshold = 0.05;
  /// Interval covered by the first sample (= the sampler cadence); later
  /// samples use their timestamp delta.
  double cadence_seconds = 0.25;
};

/// One maximal run of consecutive same-regime samples.
struct PhaseSegment {
  Regime regime = Regime::kIdle;
  double start = 0;    ///< simulated seconds (interval start)
  double seconds = 0;  ///< segment length
};

struct PhaseReport {
  std::vector<PhaseSegment> segments;  ///< contiguous, in time order
  std::array<double, kRegimeCount> totals{};  ///< seconds per regime
  double start = 0;     ///< analyzed window start
  double duration = 0;  ///< == sum(totals) by construction
  std::size_t samples = 0;
};

/// Segments the window covered by `time` (sample-end timestamps, ascending)
/// into regimes. The three series must be parallel to `time`.
PhaseReport analyze_phases(const std::vector<double>& time,
                           const std::vector<double>& util_repo,
                           const std::vector<double>& util_net,
                           const std::vector<double>& util_local,
                           const PhaseOptions& opts = {});

/// Deterministic JSON for the artifact's `timeline.phases` object: the
/// closed regime enum, the segment list, per-regime totals, and the
/// analyzed duration.
std::string phases_json(const PhaseReport& report);

/// Internal consistency: segments contiguous, totals sum to duration.
Status check_phase_report(const PhaseReport& report, double tolerance = 1e-6);

/// Cross-check against critical-path attribution from the same run: every
/// attribution row's buckets must sum to its seconds (the critpath closed-
/// sum invariant, re-verified through this independent path), the regime
/// totals must sum to the analyzed duration, and each attributed root span
/// must lie inside the timeline's coverage window (the sampler runs for
/// the whole workload, so a root outside it means the two views describe
/// different runs).
Status cross_check_attribution(const PhaseReport& report,
                               const CritReport& crit,
                               double tolerance = 1e-6);

}  // namespace vmstorm::obs
