// Deterministic JSON emission for the observability subsystem.
//
// The exported metric snapshots and traces double as regression oracles:
// two runs with the same seed must produce byte-identical output. That
// rules out iteration over unordered containers, locale-dependent or
// precision-lossy number formatting, and wall-clock timestamps. JsonWriter
// gives the caller full control of key order and formats numbers with
// std::to_chars (shortest round-trip form), so equal inputs serialize to
// equal bytes on a given toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vmstorm::obs {

/// Appends the JSON escaping of `s` (without surrounding quotes) to *out.
void json_escape(std::string_view s, std::string* out);

/// Shortest round-trip decimal form of `v`; non-finite values render as
/// "null" (metrics should never produce them, but a crash in the exporter
/// would be worse than a null cell).
std::string json_number(double v);
std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

/// Streaming JSON writer with explicit structure calls. Commas and quoting
/// are handled; nesting is tracked so misuse asserts in debug builds.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or begin_object/begin_array.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Appends pre-serialized JSON (e.g. a nested snapshot) verbatim.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void element();  // comma bookkeeping before a value/opening bracket

  std::string out_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool after_key_ = false;
};

}  // namespace vmstorm::obs
