// Deterministic JSON emission for the observability subsystem.
//
// The exported metric snapshots and traces double as regression oracles:
// two runs with the same seed must produce byte-identical output. That
// rules out iteration over unordered containers, locale-dependent or
// precision-lossy number formatting, and wall-clock timestamps. JsonWriter
// gives the caller full control of key order and formats numbers with
// std::to_chars (shortest round-trip form), so equal inputs serialize to
// equal bytes on a given toolchain.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace vmstorm::obs {

/// Appends the JSON escaping of `s` (without surrounding quotes) to *out.
void json_escape(std::string_view s, std::string* out);

/// Shortest round-trip decimal form of `v`; non-finite values render as
/// "null" (metrics should never produce them, but a crash in the exporter
/// would be worse than a null cell).
std::string json_number(double v);
std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

/// Streaming JSON writer with explicit structure calls. Commas and quoting
/// are handled; nesting is tracked so misuse asserts in debug builds.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or begin_object/begin_array.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Appends pre-serialized JSON (e.g. a nested snapshot) verbatim.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void element();  // comma bookkeeping before a value/opening bracket

  std::string out_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool after_key_ = false;
};

/// Parsed JSON document node. The read-side complement of JsonWriter, used
/// to load artifacts back (vmstormctl engine-stats over BENCH_engine.json).
/// Object members keep source order; lookup is linear — artifacts are small.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors return the natural zero value on kind mismatch, so
  /// renderers can chase optional paths without branching at every level.
  bool as_bool() const { return is_bool() && flag_; }
  double as_number() const { return is_number() ? number_ : 0.0; }
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const Members& members() const;

  /// Object member by key, nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Chained find: find(k) with a null-object fallback, so
  /// v["overhead"]["arms"] never dereferences null.
  const JsonValue& operator[](std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(Members members);

 private:
  Kind kind_ = Kind::kNull;
  bool flag_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::shared_ptr<Members> members_;  // shared_ptr: JsonValue stays copyable
                                      // without recursive value layout issues
};

/// Strict recursive-descent parse of a complete JSON document (no trailing
/// garbage, no comments, bounded nesting depth).
Result<JsonValue> parse_json(std::string_view text);

}  // namespace vmstorm::obs
