// Span/event tracer stamped with the simulated clock.
//
// Components record structured events (chunk fetch, RPC, CLONE/COMMIT
// phases, per-instance boot spans...) with explicit timestamps in simulated
// seconds. Recording is O(1) appends into a vector and a no-op while the
// tracer is disabled, so leaving trace calls in hot paths costs one branch.
//
// Two export formats:
//   * jsonl()        — one JSON object per line, for jq/scripts;
//   * chrome_json()  — the Chrome trace_event array format, loadable in
//                      chrome://tracing or https://ui.perfetto.dev (lanes
//                      map to tids, simulated seconds to microseconds).
//
// Like the metrics registry, output is deterministic: same seed, same
// event sequence, byte-identical export.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vmstorm::obs {

/// One typed argument attached to a trace event; numbers stay numbers in
/// the JSON export.
struct TraceArg {
  enum class Kind { kString, kUint, kDouble };

  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  std::uint64_t u = 0;
  double d = 0;

  static TraceArg str(std::string key, std::string value);
  static TraceArg uint(std::string key, std::uint64_t value);
  static TraceArg num(std::string key, double value);
};

struct TraceEvent {
  double ts = 0;        ///< simulated seconds
  double dur = -1;      ///< >= 0 for complete ('X') events
  char phase = 'i';     ///< 'X' complete, 'B' begin, 'E' end, 'i' instant
  std::uint32_t lane = 0;  ///< rendered as the Chrome tid (node/instance id)
  std::string cat;
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// A span known only at completion: [ts, ts+dur).
  void complete(double ts, double dur, std::uint32_t lane,
                std::string_view cat, std::string_view name,
                std::vector<TraceArg> args = {});
  void begin(double ts, std::uint32_t lane, std::string_view cat,
             std::string_view name, std::vector<TraceArg> args = {});
  void end(double ts, std::uint32_t lane, std::string_view cat,
           std::string_view name);
  void instant(double ts, std::uint32_t lane, std::string_view cat,
               std::string_view name, std::vector<TraceArg> args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  std::string jsonl() const;
  std::string chrome_json() const;

 private:
  void push(double ts, double dur, char phase, std::uint32_t lane,
            std::string_view cat, std::string_view name,
            std::vector<TraceArg> args);

  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace vmstorm::obs
