// Span/event tracer stamped with the simulated clock.
//
// Components record structured events (chunk fetch, RPC, CLONE/COMMIT
// phases, per-instance boot spans...) with explicit timestamps in simulated
// seconds. Recording is O(1) slot writes into a bounded ring and a no-op
// while the tracer is disabled, so leaving trace calls in hot paths costs
// one branch.
//
// Causality: events can carry span identity. A *span* event (complete_span)
// owns a fresh id and names its parent, forming the span DAG the critical-
// path analyzer (obs/critpath.hpp) walks. A *cost* event (complete_in) is a
// leaf interval — service time or queue wait — attributed to the enclosing
// span. Cross-coroutine wakeups are tied together with Chrome flow events
// ('s' at the releaser, 'f' at the resumed waiter, same id).
//
// Bounded recording: events live in a ring of ring_capacity() slots. The
// backing store grows by amortized doubling up to the capacity (small runs
// never pay for a big ring), then the oldest event is overwritten and
// counted in dropped_ring(). Per-root-span sampling (set_sampling) keeps a
// deterministic, seed-derived subset of span/cost events at scale; every
// suppressed event is counted in dropped_sampling(). Stray end() calls are
// counted in dropped_stray_end(). Together these are the trace.dropped_*
// gauges exported by Cloud::collect_metrics().
//
// Two export formats:
//   * jsonl()        — one JSON object per line, for jq/scripts and
//                      `vmstormctl critpath`;
//   * chrome_json()  — the Chrome trace_event array format, loadable in
//                      chrome://tracing or https://ui.perfetto.dev (lanes
//                      map to tids, simulated seconds to microseconds).
//
// Like the metrics registry, output is deterministic: same seed, same
// event sequence, same ring/sampling config, byte-identical export. The
// sampling decision hashes (seed, root span id) only, so it cannot depend
// on wall-clock state, and span ids are allocated whether or not the span
// is kept — a sampled run records a strict subset of the full run's spans,
// with identical ids.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vmstorm::obs {

class SelfProfiler;

/// Span / flow identifier. 0 means "none"; allocated ids start at 1.
using SpanId = std::uint64_t;

/// One typed argument attached to a trace event; numbers stay numbers in
/// the JSON export.
struct TraceArg {
  enum class Kind { kString, kUint, kDouble };

  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  std::uint64_t u = 0;
  double d = 0;

  static TraceArg str(std::string key, std::string value);
  static TraceArg uint(std::string key, std::uint64_t value);
  static TraceArg num(std::string key, double value);
};

struct TraceEvent {
  double ts = 0;        ///< simulated seconds
  double dur = -1;      ///< >= 0 for complete ('X') events
  char phase = 'i';     ///< 'X' complete, 'B' begin, 'E' end, 'i' instant,
                        ///< 's'/'f' flow start/finish
  std::uint32_t lane = 0;  ///< rendered as the Chrome tid (node/instance id)
  SpanId id = 0;        ///< span events: own id; flow events: arrow binding
  SpanId parent = 0;    ///< span events: enclosing span's id
  SpanId span = 0;      ///< cost events: span this interval belongs to
  std::string cat;
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  /// Default ring capacity (events). Sized so every existing test and
  /// quick-mode bench retains its full stream; the backing store only
  /// grows as events arrive, so small runs allocate a few KiB, not the cap.
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 21;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Allocates a fresh span/flow id (never 0) and decides whether the span
  /// is sampled: a root span (parent == 0) hashes (sample seed, id); a
  /// child inherits its parent's decision, so whole span trees are kept or
  /// dropped together. Call sites gate allocation on enabled(), so ids are
  /// deterministic for a given seed regardless of the sampling rate.
  SpanId new_span(SpanId parent = 0);

  /// Resizes the ring to `capacity` slots (min 1) and discards all
  /// recorded events. Configure before recording starts.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const { return capacity_; }

  /// Keeps roughly `rate` (in [0, 1]) of root span trees; the complement
  /// is suppressed and counted in dropped_sampling(). The decision is a
  /// pure function of (seed, root span id): same seed + same rate =>
  /// byte-identical output. rate >= 1 restores full tracing.
  void set_sampling(double rate, std::uint64_t seed);
  double sample_rate() const { return sample_rate_; }
  bool sampling_active() const { return sampling_active_; }

  /// True when span `id`'s tree is kept under the current sampling config.
  /// Ids never seen by new_span (or span 0) report true.
  bool span_sampled(SpanId id) const {
    if (!sampling_active_ || id == 0) return true;
    return id >= sampled_bits_.size() || sampled_bits_[id] != 0;
  }

  /// A span known only at completion: [ts, ts+dur).
  void complete(double ts, double dur, std::uint32_t lane,
                std::string_view cat, std::string_view name,
                std::vector<TraceArg> args = {});

  /// A completed span with causal identity: carries its own id and its
  /// parent's, forming the span DAG critpath walks. Suppressed (and
  /// counted) when span `id` is sampled out.
  void complete_span(double ts, double dur, std::uint32_t lane,
                     std::string_view cat, std::string_view name, SpanId id,
                     SpanId parent, std::vector<TraceArg> args = {});

  /// A leaf cost interval (service time or queue wait) attributed to the
  /// enclosing span `span`. Suppressed (and counted) when that span is
  /// sampled out.
  void complete_in(double ts, double dur, std::uint32_t lane,
                   std::string_view cat, std::string_view name, SpanId span,
                   std::vector<TraceArg> args = {});

  void begin(double ts, std::uint32_t lane, std::string_view cat,
             std::string_view name, std::vector<TraceArg> args = {});
  void end(double ts, std::uint32_t lane, std::string_view cat,
           std::string_view name);
  void instant(double ts, std::uint32_t lane, std::string_view cat,
               std::string_view name, std::vector<TraceArg> args = {});

  /// Chrome flow arrow across coroutines: 's' at the releasing side (returns
  /// the arrow id), 'f' at the resumed waiter (pass that id back).
  /// `owner_span` is the span the arrow belongs to (the waiter's); when
  /// that span is sampled out the arrow is suppressed and 0 returned
  /// (flow_end(0) is a no-op).
  SpanId flow_begin(double ts, std::uint32_t lane, std::string_view name,
                    SpanId owner_span = 0);
  void flow_end(double ts, std::uint32_t lane, std::string_view name,
                SpanId id);

  /// Begin/end pairing health. An end() on a lane with no open begin is
  /// counted here and *dropped* (it would render as a malformed Chrome
  /// trace); open_begins() is the number of begins still unclosed.
  std::uint64_t pairing_errors() const { return pairing_errors_; }
  std::uint64_t open_begins() const;

  /// Lane of the first stray end() this tracer dropped — the drop counter
  /// alone says a pairing bug exists somewhere; the lane says where to
  /// start looking. Valid only while has_stray_end() is true.
  bool has_stray_end() const { return has_stray_end_; }
  std::uint32_t first_stray_lane() const { return first_stray_lane_; }

  // ---- Drop accounting, by cause -----------------------------------------
  /// Oldest events overwritten because the ring was full.
  std::uint64_t dropped_ring() const { return dropped_ring_; }
  /// Span/cost/flow events suppressed by per-root-span sampling.
  std::uint64_t dropped_sampling() const { return dropped_sampling_; }
  /// end() calls with no matching begin (same count as pairing_errors()).
  std::uint64_t dropped_stray_end() const { return pairing_errors_; }
  std::uint64_t dropped_total() const {
    return dropped_ring_ + dropped_sampling_ + pairing_errors_;
  }
  /// Events accepted into the ring over the tracer's lifetime, including
  /// any that were later overwritten.
  std::uint64_t recorded_total() const { return count_; }

  /// Events currently retained, oldest first. Built from the ring on each
  /// call; prefer jsonl()/chrome_json() for exports.
  std::vector<TraceEvent> events() const;
  std::size_t size() const {
    return count_ < capacity_ ? static_cast<std::size_t>(count_) : capacity_;
  }
  /// Drops recorded events and resets drop/pairing counters and span ids.
  /// Ring capacity and the sampling config survive.
  void clear();

  /// Host-side profiler charged for time spent recording (selfprof's
  /// kTracer bucket). Null (default) skips all wall-clock reads.
  void set_profiler(SelfProfiler* profiler) { profiler_ = profiler; }

  std::string jsonl() const;
  std::string chrome_json() const;

 private:
  TraceEvent& push(double ts, double dur, char phase, std::uint32_t lane,
                   std::string_view cat, std::string_view name,
                   std::vector<TraceArg> args);
  void grow_ring();
  void ensure_sampled_slot(SpanId id);
  template <typename Fn>
  void for_each_retained(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t start =
        count_ > capacity_ ? static_cast<std::size_t>(count_ % capacity_) : 0;
    for (std::size_t i = 0; i < n; ++i) {
      fn(ring_[(start + i) % capacity_]);
    }
  }

  bool enabled_ = false;
  SpanId last_id_ = 0;
  std::uint64_t pairing_errors_ = 0;
  bool has_stray_end_ = false;
  std::uint32_t first_stray_lane_ = 0;
  std::map<std::uint32_t, std::uint64_t> begin_depth_;  ///< per-lane open begins

  // Ring sink. ring_.size() grows on demand up to capacity_; slot k of
  // event number n is n % capacity_.
  std::size_t capacity_ = kDefaultRingCapacity;
  std::uint64_t count_ = 0;  ///< events accepted (monotone)
  std::uint64_t dropped_ring_ = 0;
  std::vector<TraceEvent> ring_;

  // Per-root-span sampling. sampled_bits_[id] is the keep/drop decision for
  // span id (1 byte per allocated id, grown by doubling; absent = kept).
  bool sampling_active_ = false;
  double sample_rate_ = 1.0;
  std::uint64_t sample_seed_ = 0;
  std::uint64_t dropped_sampling_ = 0;
  std::vector<std::uint8_t> sampled_bits_;

  SelfProfiler* profiler_ = nullptr;
};

}  // namespace vmstorm::obs
