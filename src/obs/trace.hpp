// Span/event tracer stamped with the simulated clock.
//
// Components record structured events (chunk fetch, RPC, CLONE/COMMIT
// phases, per-instance boot spans...) with explicit timestamps in simulated
// seconds. Recording is O(1) appends into a vector and a no-op while the
// tracer is disabled, so leaving trace calls in hot paths costs one branch.
//
// Causality: events can carry span identity. A *span* event (complete_span)
// owns a fresh id and names its parent, forming the span DAG the critical-
// path analyzer (obs/critpath.hpp) walks. A *cost* event (complete_in) is a
// leaf interval — service time or queue wait — attributed to the enclosing
// span. Cross-coroutine wakeups are tied together with Chrome flow events
// ('s' at the releaser, 'f' at the resumed waiter, same id).
//
// Two export formats:
//   * jsonl()        — one JSON object per line, for jq/scripts and
//                      `vmstormctl critpath`;
//   * chrome_json()  — the Chrome trace_event array format, loadable in
//                      chrome://tracing or https://ui.perfetto.dev (lanes
//                      map to tids, simulated seconds to microseconds).
//
// Like the metrics registry, output is deterministic: same seed, same
// event sequence, byte-identical export.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vmstorm::obs {

/// Span / flow identifier. 0 means "none"; allocated ids start at 1.
using SpanId = std::uint64_t;

/// One typed argument attached to a trace event; numbers stay numbers in
/// the JSON export.
struct TraceArg {
  enum class Kind { kString, kUint, kDouble };

  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  std::uint64_t u = 0;
  double d = 0;

  static TraceArg str(std::string key, std::string value);
  static TraceArg uint(std::string key, std::uint64_t value);
  static TraceArg num(std::string key, double value);
};

struct TraceEvent {
  double ts = 0;        ///< simulated seconds
  double dur = -1;      ///< >= 0 for complete ('X') events
  char phase = 'i';     ///< 'X' complete, 'B' begin, 'E' end, 'i' instant,
                        ///< 's'/'f' flow start/finish
  std::uint32_t lane = 0;  ///< rendered as the Chrome tid (node/instance id)
  SpanId id = 0;        ///< span events: own id; flow events: arrow binding
  SpanId parent = 0;    ///< span events: enclosing span's id
  SpanId span = 0;      ///< cost events: span this interval belongs to
  std::string cat;
  std::string name;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Allocates a fresh span/flow id (never 0). Call sites gate allocation on
  /// enabled(), so ids are deterministic for a given seed.
  SpanId new_span() { return ++last_id_; }

  /// A span known only at completion: [ts, ts+dur).
  void complete(double ts, double dur, std::uint32_t lane,
                std::string_view cat, std::string_view name,
                std::vector<TraceArg> args = {});

  /// A completed span with causal identity: carries its own id and its
  /// parent's, forming the span DAG critpath walks.
  void complete_span(double ts, double dur, std::uint32_t lane,
                     std::string_view cat, std::string_view name, SpanId id,
                     SpanId parent, std::vector<TraceArg> args = {});

  /// A leaf cost interval (service time or queue wait) attributed to the
  /// enclosing span `span`.
  void complete_in(double ts, double dur, std::uint32_t lane,
                   std::string_view cat, std::string_view name, SpanId span,
                   std::vector<TraceArg> args = {});

  void begin(double ts, std::uint32_t lane, std::string_view cat,
             std::string_view name, std::vector<TraceArg> args = {});
  void end(double ts, std::uint32_t lane, std::string_view cat,
           std::string_view name);
  void instant(double ts, std::uint32_t lane, std::string_view cat,
               std::string_view name, std::vector<TraceArg> args = {});

  /// Chrome flow arrow across coroutines: 's' at the releasing side (returns
  /// the arrow id), 'f' at the resumed waiter (pass that id back).
  SpanId flow_begin(double ts, std::uint32_t lane, std::string_view name);
  void flow_end(double ts, std::uint32_t lane, std::string_view name,
                SpanId id);

  /// Begin/end pairing health. An end() on a lane with no open begin is
  /// counted here and *dropped* (it would render as a malformed Chrome
  /// trace); open_begins() is the number of begins still unclosed.
  std::uint64_t pairing_errors() const { return pairing_errors_; }
  std::uint64_t open_begins() const;

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear();

  std::string jsonl() const;
  std::string chrome_json() const;

 private:
  void push(double ts, double dur, char phase, std::uint32_t lane,
            std::string_view cat, std::string_view name,
            std::vector<TraceArg> args);

  bool enabled_ = false;
  SpanId last_id_ = 0;
  std::uint64_t pairing_errors_ = 0;
  std::map<std::uint32_t, std::uint64_t> begin_depth_;  ///< per-lane open begins
  std::vector<TraceEvent> events_;
};

}  // namespace vmstorm::obs
