// Host-side self-profiling for the engine: wall-clock phase timers and
// process RSS sampling.
//
// The simulator is deterministic in *simulated* time; SelfProfiler measures
// what the simulation costs in *host* time. Engine::run tiles its wall time
// into phases — event-heap operations, auditor hooks, coroutine resumption,
// tracer recording — so `bench_scale` can answer "where do the engine's
// cycles go at 10k nodes" and price the observability layer itself
// (tracing-off vs sampled vs full ablation).
//
// Determinism contract: nothing here feeds back into the simulation or the
// seed-deterministic metric/trace exports. Host numbers flow only into
// Registry::host_gauge() and the non-fingerprinted "overhead" section of
// BENCH_engine.json, so same-seed byte-identity of the deterministic
// artifacts holds with a profiler attached. wall_now() is the one
// vmlint-sanctioned wall-clock read in src/ (vmlint:allow(determinism) in
// selfprof.cpp); everything host-timed funnels through it.
#pragma once

#include <cstdint>

namespace vmstorm::obs {

class JsonWriter;

class SelfProfiler {
 public:
  /// Phases tiling Engine::run wall time. kTracer is charged inside
  /// kResume (components record from resumed coroutines); the derived
  /// buckets below account for that.
  enum Phase : int {
    kQueueOps = 0,  ///< event-heap top/pop + schedule bookkeeping
    kAuditor,       ///< Auditor::on_event hooks
    kResume,        ///< coroutine resumption (includes user work + tracer)
    kTracer,        ///< Tracer::push, nested inside kResume
    kPhaseCount
  };

  static const char* phase_name(int phase);

  /// Monotonic host seconds. The single sanctioned wall-clock read.
  static double wall_now();

  void charge(Phase phase, double seconds) { seconds_[phase] += seconds; }
  /// Credits one outermost Engine::run invocation's total wall time.
  void charge_run(double seconds) { run_seconds_ += seconds; }

  void reset();

  double seconds(Phase phase) const { return seconds_[phase]; }
  double run_seconds() const { return run_seconds_; }

  /// Dispatch overhead: run time not in any measured phase (loop control,
  /// guard checks, span bookkeeping). Clamped at 0 against timer noise.
  double dispatch_seconds() const;
  /// Simulated components' own work: resume time minus tracer time.
  double user_seconds() const;

  /// {"wall_seconds":..,"phases":{"queue_ops":..,"auditor":..,"resume":..,
  ///  "tracer":..,"dispatch":..,"user_work":..}}
  void write_json(JsonWriter& w) const;

 private:
  double seconds_[kPhaseCount] = {};
  double run_seconds_ = 0;
};

/// Peak resident set (VmHWM) of this process in bytes, from
/// /proc/self/status. 0 when unavailable (non-Linux).
std::uint64_t peak_rss_bytes();

/// Current resident set (VmRSS) in bytes; 0 when unavailable.
std::uint64_t current_rss_bytes();

}  // namespace vmstorm::obs
