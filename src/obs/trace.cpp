#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace vmstorm::obs {

TraceArg TraceArg::str(std::string key, std::string value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kString;
  a.s = std::move(value);
  return a;
}

TraceArg TraceArg::uint(std::string key, std::uint64_t value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kUint;
  a.u = value;
  return a;
}

TraceArg TraceArg::num(std::string key, double value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kDouble;
  a.d = value;
  return a;
}

void Tracer::push(double ts, double dur, char phase, std::uint32_t lane,
                  std::string_view cat, std::string_view name,
                  std::vector<TraceArg> args) {
  TraceEvent ev;
  ev.ts = ts;
  ev.dur = dur;
  ev.phase = phase;
  ev.lane = lane;
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  // vmlint:allow(hot-path-alloc) amortized event log growth; the ROADMAP
  // ring-buffer tracer replaces this with a fixed-capacity ring.
  events_.push_back(std::move(ev));
}

void Tracer::complete(double ts, double dur, std::uint32_t lane,
                      std::string_view cat, std::string_view name,
                      std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, dur, 'X', lane, cat, name, std::move(args));
}

void Tracer::complete_span(double ts, double dur, std::uint32_t lane,
                           std::string_view cat, std::string_view name,
                           SpanId id, SpanId parent,
                           std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, dur, 'X', lane, cat, name, std::move(args));
  events_.back().id = id;
  events_.back().parent = parent;
}

void Tracer::complete_in(double ts, double dur, std::uint32_t lane,
                         std::string_view cat, std::string_view name,
                         SpanId span, std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, dur, 'X', lane, cat, name, std::move(args));
  events_.back().span = span;
}

void Tracer::begin(double ts, std::uint32_t lane, std::string_view cat,
                   std::string_view name, std::vector<TraceArg> args) {
  if (!enabled_) return;
  ++begin_depth_[lane];
  push(ts, -1, 'B', lane, cat, name, std::move(args));
}

void Tracer::end(double ts, std::uint32_t lane, std::string_view cat,
                 std::string_view name) {
  if (!enabled_) return;
  auto it = begin_depth_.find(lane);
  if (it == begin_depth_.end() || it->second == 0) {
    // Unbalanced end: emitting it would produce a malformed Chrome trace, so
    // count the error and drop the event. Surfaced as trace.pairing_errors.
    ++pairing_errors_;
    return;
  }
  --it->second;
  push(ts, -1, 'E', lane, cat, name, {});
}

void Tracer::instant(double ts, std::uint32_t lane, std::string_view cat,
                     std::string_view name, std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, -1, 'i', lane, cat, name, std::move(args));
}

SpanId Tracer::flow_begin(double ts, std::uint32_t lane,
                          std::string_view name) {
  if (!enabled_) return 0;
  const SpanId id = new_span();
  push(ts, -1, 's', lane, "flow", name, {});
  events_.back().id = id;
  return id;
}

void Tracer::flow_end(double ts, std::uint32_t lane, std::string_view name,
                      SpanId id) {
  if (!enabled_ || id == 0) return;
  push(ts, -1, 'f', lane, "flow", name, {});
  events_.back().id = id;
}

std::uint64_t Tracer::open_begins() const {
  std::uint64_t n = 0;
  for (const auto& [lane, depth] : begin_depth_) n += depth;
  return n;
}

void Tracer::clear() {
  events_.clear();
  begin_depth_.clear();
  pairing_errors_ = 0;
  last_id_ = 0;
}

namespace {

void write_event(JsonWriter& w, const TraceEvent& ev, bool chrome) {
  w.begin_object();
  w.key("name").value(ev.name);
  w.key("cat").value(ev.cat);
  w.key("ph").value(std::string_view(&ev.phase, 1));
  if (chrome) {
    // Chrome expects microseconds; simulated seconds scale cleanly.
    w.key("ts").value(ev.ts * 1e6);
    if (ev.phase == 'X') w.key("dur").value(ev.dur * 1e6);
    w.key("pid").value(std::uint64_t{0});
    w.key("tid").value(static_cast<std::uint64_t>(ev.lane));
  } else {
    w.key("ts").value(ev.ts);
    if (ev.phase == 'X') w.key("dur").value(ev.dur);
    w.key("lane").value(static_cast<std::uint64_t>(ev.lane));
  }
  if (ev.id != 0) w.key("id").value(ev.id);
  if (ev.parent != 0) w.key("parent").value(ev.parent);
  if (ev.span != 0) w.key("span").value(ev.span);
  // Bind the arrow head to the enclosing slice (classic flow semantics).
  if (chrome && ev.phase == 'f') w.key("bp").value(std::string_view("e"));
  if (!ev.args.empty()) {
    w.key("args").begin_object();
    for (const TraceArg& a : ev.args) {
      w.key(a.key);
      switch (a.kind) {
        case TraceArg::Kind::kString: w.value(a.s); break;
        case TraceArg::Kind::kUint: w.value(a.u); break;
        case TraceArg::Kind::kDouble: w.value(a.d); break;
      }
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string Tracer::jsonl() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    JsonWriter w;
    write_event(w, ev, /*chrome=*/false);
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string Tracer::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events_) write_event(w, ev, /*chrome=*/true);
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace vmstorm::obs
