#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "obs/selfprof.hpp"

namespace vmstorm::obs {

namespace {

/// splitmix64 finalizer: the sampling decision must be a high-quality pure
/// function of (seed, span id) so consecutive ids don't correlate.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceArg TraceArg::str(std::string key, std::string value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kString;
  a.s = std::move(value);
  return a;
}

TraceArg TraceArg::uint(std::string key, std::uint64_t value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kUint;
  a.u = value;
  return a;
}

TraceArg TraceArg::num(std::string key, double value) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = Kind::kDouble;
  a.d = value;
  return a;
}

void Tracer::grow_ring() {
  // Amortized doubling toward the cap, without push_back/reserve: the ring
  // is on the engine's hot path, where vmlint's hot-path-alloc rule keeps
  // per-event allocation calls out. Slot construction + move + swap is the
  // sanctioned growth idiom (O(1) amortized, zero steady-state allocation).
  std::size_t next = ring_.empty() ? 64 : ring_.size() * 2;
  if (next > capacity_) next = capacity_;
  std::vector<TraceEvent> bigger(next);
  std::move(ring_.begin(), ring_.end(), bigger.begin());
  ring_.swap(bigger);
}

TraceEvent& Tracer::push(double ts, double dur, char phase, std::uint32_t lane,
                         std::string_view cat, std::string_view name,
                         std::vector<TraceArg> args) {
  const double t0 = profiler_ != nullptr ? SelfProfiler::wall_now() : 0.0;
  const std::size_t slot = static_cast<std::size_t>(count_ % capacity_);
  if (slot >= ring_.size()) grow_ring();
  if (count_ >= capacity_) ++dropped_ring_;  // overwriting the oldest event
  TraceEvent& ev = ring_[slot];
  ev.ts = ts;
  ev.dur = dur;
  ev.phase = phase;
  ev.lane = lane;
  ev.id = 0;
  ev.parent = 0;
  ev.span = 0;
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  ++count_;
  if (profiler_ != nullptr) {
    profiler_->charge(SelfProfiler::kTracer, SelfProfiler::wall_now() - t0);
  }
  return ev;
}

SpanId Tracer::new_span(SpanId parent) {
  const SpanId id = ++last_id_;
  if (sampling_active_) {
    ensure_sampled_slot(id);
    const bool keep =
        parent == 0
            ? (static_cast<double>(mix64(sample_seed_ ^ id) >> 11) *
               0x1.0p-53) < sample_rate_
            : span_sampled(parent);
    sampled_bits_[id] = keep ? 1 : 0;
  }
  return id;
}

void Tracer::ensure_sampled_slot(SpanId id) {
  if (id < sampled_bits_.size()) return;
  std::size_t next = sampled_bits_.empty() ? 1024 : sampled_bits_.size();
  while (next <= id) next *= 2;
  // Same growth idiom as the ring (new_span is hot via flow_begin). Absent
  // ids default to "kept", matching span_sampled().
  std::vector<std::uint8_t> bigger(next, 1);
  std::copy(sampled_bits_.begin(), sampled_bits_.end(), bigger.begin());
  sampled_bits_.swap(bigger);
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  count_ = 0;
  dropped_ring_ = 0;
  std::vector<TraceEvent> empty;
  ring_.swap(empty);
}

void Tracer::set_sampling(double rate, std::uint64_t seed) {
  sample_rate_ = std::clamp(rate, 0.0, 1.0);
  sample_seed_ = seed;
  sampling_active_ = sample_rate_ < 1.0;
  if (!sampling_active_) {
    std::vector<std::uint8_t> empty;
    sampled_bits_.swap(empty);
  }
}

void Tracer::complete(double ts, double dur, std::uint32_t lane,
                      std::string_view cat, std::string_view name,
                      std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, dur, 'X', lane, cat, name, std::move(args));
}

void Tracer::complete_span(double ts, double dur, std::uint32_t lane,
                           std::string_view cat, std::string_view name,
                           SpanId id, SpanId parent,
                           std::vector<TraceArg> args) {
  if (!enabled_) return;
  if (!span_sampled(id)) {
    ++dropped_sampling_;
    return;
  }
  TraceEvent& ev = push(ts, dur, 'X', lane, cat, name, std::move(args));
  ev.id = id;
  ev.parent = parent;
}

void Tracer::complete_in(double ts, double dur, std::uint32_t lane,
                         std::string_view cat, std::string_view name,
                         SpanId span, std::vector<TraceArg> args) {
  if (!enabled_) return;
  if (span != 0 && !span_sampled(span)) {
    ++dropped_sampling_;
    return;
  }
  TraceEvent& ev = push(ts, dur, 'X', lane, cat, name, std::move(args));
  ev.span = span;
}

void Tracer::begin(double ts, std::uint32_t lane, std::string_view cat,
                   std::string_view name, std::vector<TraceArg> args) {
  if (!enabled_) return;
  ++begin_depth_[lane];
  push(ts, -1, 'B', lane, cat, name, std::move(args));
}

void Tracer::end(double ts, std::uint32_t lane, std::string_view cat,
                 std::string_view name) {
  if (!enabled_) return;
  auto it = begin_depth_.find(lane);
  if (it == begin_depth_.end() || it->second == 0) {
    // Unbalanced end: emitting it would produce a malformed Chrome trace, so
    // count the error and drop the event. Surfaced as trace.dropped_stray_end
    // (and the legacy trace.pairing_errors gauge); the first offender's lane
    // is kept so the trace.first_stray_lane gauge can name the culprit.
    if (!has_stray_end_) {
      has_stray_end_ = true;
      first_stray_lane_ = lane;
    }
    ++pairing_errors_;
    return;
  }
  --it->second;
  push(ts, -1, 'E', lane, cat, name, {});
}

void Tracer::instant(double ts, std::uint32_t lane, std::string_view cat,
                     std::string_view name, std::vector<TraceArg> args) {
  if (!enabled_) return;
  push(ts, -1, 'i', lane, cat, name, std::move(args));
}

SpanId Tracer::flow_begin(double ts, std::uint32_t lane, std::string_view name,
                          SpanId owner_span) {
  if (!enabled_) return 0;
  if (owner_span != 0 && !span_sampled(owner_span)) {
    // The waiter's span tree is sampled out; both arrow halves vanish with
    // it (flow_end(0) is a no-op), keeping the export self-consistent.
    ++dropped_sampling_;
    return 0;
  }
  const SpanId id = new_span(owner_span);
  push(ts, -1, 's', lane, "flow", name, {}).id = id;
  return id;
}

void Tracer::flow_end(double ts, std::uint32_t lane, std::string_view name,
                      SpanId id) {
  if (!enabled_ || id == 0) return;
  push(ts, -1, 'f', lane, "flow", name, {}).id = id;
}

std::uint64_t Tracer::open_begins() const {
  std::uint64_t n = 0;
  for (const auto& [lane, depth] : begin_depth_) n += depth;
  return n;
}

void Tracer::clear() {
  std::vector<TraceEvent> empty;
  ring_.swap(empty);
  count_ = 0;
  dropped_ring_ = 0;
  dropped_sampling_ = 0;
  std::vector<std::uint8_t> no_bits;
  sampled_bits_.swap(no_bits);
  begin_depth_.clear();
  pairing_errors_ = 0;
  has_stray_end_ = false;
  first_stray_lane_ = 0;
  last_id_ = 0;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out(size());
  std::size_t i = 0;
  for_each_retained([&](const TraceEvent& ev) { out[i++] = ev; });
  return out;
}

namespace {

void write_event(JsonWriter& w, const TraceEvent& ev, bool chrome) {
  w.begin_object();
  w.key("name").value(ev.name);
  w.key("cat").value(ev.cat);
  w.key("ph").value(std::string_view(&ev.phase, 1));
  if (chrome) {
    // Chrome expects microseconds; simulated seconds scale cleanly.
    w.key("ts").value(ev.ts * 1e6);
    if (ev.phase == 'X') w.key("dur").value(ev.dur * 1e6);
    w.key("pid").value(std::uint64_t{0});
    w.key("tid").value(static_cast<std::uint64_t>(ev.lane));
  } else {
    w.key("ts").value(ev.ts);
    if (ev.phase == 'X') w.key("dur").value(ev.dur);
    w.key("lane").value(static_cast<std::uint64_t>(ev.lane));
  }
  if (ev.id != 0) w.key("id").value(ev.id);
  if (ev.parent != 0) w.key("parent").value(ev.parent);
  if (ev.span != 0) w.key("span").value(ev.span);
  // Bind the arrow head to the enclosing slice (classic flow semantics).
  if (chrome && ev.phase == 'f') w.key("bp").value(std::string_view("e"));
  if (!ev.args.empty()) {
    w.key("args").begin_object();
    for (const TraceArg& a : ev.args) {
      w.key(a.key);
      switch (a.kind) {
        case TraceArg::Kind::kString: w.value(a.s); break;
        case TraceArg::Kind::kUint: w.value(a.u); break;
        case TraceArg::Kind::kDouble: w.value(a.d); break;
      }
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string Tracer::jsonl() const {
  std::string out;
  for_each_retained([&out](const TraceEvent& ev) {
    JsonWriter w;
    write_event(w, ev, /*chrome=*/false);
    out += w.str();
    out += '\n';
  });
  return out;
}

std::string Tracer::chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for_each_retained(
      [&w](const TraceEvent& ev) { write_event(w, ev, /*chrome=*/true); });
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace vmstorm::obs
