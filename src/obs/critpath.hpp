// Critical-path analyzer over the span DAG recorded by obs::Tracer.
//
// The tracer's events carry causal structure: span events ('X' with id /
// parent) form a DAG rooted at per-instance VM boot / resume / snapshot
// spans, and cost events ('X' with a `span` attribution and cat "wait" or
// "svc") are the leaf intervals where simulated time is actually spent —
// disk platter service, NIC transmission, queueing behind another
// instance's request, metadata RPCs. This analyzer tiles each root span's
// [start, end) with the recorded cost intervals and attributes every
// elementary slice of wall time to exactly one bucket, so the per-bucket
// totals sum to the instance's measured deployment / snapshot time.
//
// Overlap resolution is deterministic: at any instant the winning interval
// is chosen by (kind priority, bucket rank, recording order) where genuine
// waits outrank service (a queued request costs queue time even though the
// server is busy on someone else's behalf) and join-waits rank last (a
// parent joining children is idle filler, not a resource queue). Uncovered
// time falls to `boot_init` for boot/resume roots (guest CPU work between
// I/O) and `compute` otherwise.
//
// Everything here is pure post-processing: same trace in, byte-identical
// attribution JSON out.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace vmstorm::obs {

/// Where a slice of critical-path time went. Order is the schema order of
/// the `buckets` array in the attribution JSON.
enum class CritBucket {
  kBootInit = 0,   ///< uncovered time inside a boot/resume root (guest work)
  kCompute,        ///< uncovered time in other roots / unclassified service
  kLocalDisk,      ///< disk service on the instance's own node
  kMetadata,       ///< RPC round-trips under a metadata-hinted span
  kNetTransfer,    ///< NIC service, wire latency, connection setup
  kQueueWait,      ///< blocked behind another holder (disk FIFO, semaphore,
                   ///< dirty-page budget, inflight chunk, join filler)
  kRepoDisk,       ///< disk/DFS service under a repository-hinted span
};

inline constexpr std::size_t kCritBucketCount = 7;

const char* crit_bucket_name(CritBucket b);

/// One coalesced tile of a root span's critical path.
struct CritSegment {
  double start = 0;
  double seconds = 0;
  CritBucket bucket = CritBucket::kCompute;
  std::string name;        ///< winning event name ("" for filler time)
  SpanId holder = 0;       ///< wait tiles: span that held the resource
};

/// Per-root attribution: one VM instance deployment (kind "boot"),
/// resumed instance ("resume"), or snapshot ("snapshot").
struct CritRow {
  std::string kind;
  std::uint64_t instance = 0;
  std::uint32_t lane = 0;
  SpanId span = 0;
  double start = 0;
  double seconds = 0;
  std::array<double, kCritBucketCount> buckets{};
  std::vector<CritSegment> segments;
};

struct CritReport {
  std::vector<CritRow> rows;
  std::uint64_t spans_seen = 0;
  std::uint64_t cost_events = 0;
};

/// Walks the span DAG and tiles every root span with cost intervals.
CritReport analyze_critical_paths(const std::vector<TraceEvent>& events);

/// Deterministic JSON for the bench artifact `attribution` section
/// (schema vmstorm-bench-v2): bucket names, per-row breakdowns, and a
/// per-kind summary. Buckets of each row sum to its `seconds`.
std::string attribution_json(const CritReport& report);

/// Human-readable tables: per-kind summary, per-instance breakdown, and
/// the slowest instance's largest critical-path segments.
std::string attribution_table(const CritReport& report);

/// Parses a tracer jsonl() export back into events, so `vmstormctl
/// critpath` reproduces in-process attribution byte-for-byte (numbers are
/// round-tripped through shortest-form representation on both sides).
Result<std::vector<TraceEvent>> parse_trace_jsonl(std::string_view text);

}  // namespace vmstorm::obs
