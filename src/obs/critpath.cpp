#include "obs/critpath.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace vmstorm::obs {

namespace {

constexpr const char* kBucketNames[kCritBucketCount] = {
    "boot_init", "compute",    "local_disk", "metadata",
    "net_transfer", "queue_wait", "repo_disk",
};

/// Ancestor hint propagated down the span DAG via the "bucket" span arg.
enum class Hint { kNone = 0, kMetadata, kRepo };

struct SpanInfo {
  SpanId parent = 0;
  Hint hint = Hint::kNone;
};

/// Root-row index + effective (nearest-ancestor) hint for a span.
struct Resolved {
  int row = -1;
  Hint hint = Hint::kNone;
};

const TraceArg* find_arg(const TraceEvent& ev, std::string_view key) {
  for (const TraceArg& a : ev.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

bool is_root_span(const TraceEvent& ev) {
  if (ev.phase != 'X' || ev.id == 0 || ev.dur < 0) return false;
  if (ev.cat == "vm") return ev.name == "boot" || ev.name == "resume";
  return ev.cat == "cloud" && ev.name == "snapshot";
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

/// One clipped cost interval competing for critical-path time.
struct Seg {
  double t0 = 0;
  double t1 = 0;
  int priority = 0;  ///< 0 = resource wait, 1 = service, 2 = join filler
  int bucket = 0;
  std::size_t index = 0;  ///< recording order, final tie-break
  const std::string* name = nullptr;
  SpanId holder = 0;
};

/// Buckets a cost event given the effective hint of its span chain. Waits
/// are queue time no matter the resource; service time splits by what the
/// span chain says the work was for.
void classify(const TraceEvent& ev, Hint hint, int* priority,
              CritBucket* bucket) {
  if (ev.cat == "wait") {
    *bucket = CritBucket::kQueueWait;
    *priority = ev.name == "sim.join" ? 2 : 0;
    return;
  }
  *priority = 1;
  if (hint == Hint::kMetadata) {
    *bucket = CritBucket::kMetadata;
  } else if (starts_with(ev.name, "net.")) {
    *bucket = CritBucket::kNetTransfer;
  } else if (hint == Hint::kRepo) {
    *bucket = CritBucket::kRepoDisk;
  } else if (ev.name == "disk" || starts_with(ev.name, "dfs.")) {
    *bucket = CritBucket::kLocalDisk;
  } else {
    *bucket = CritBucket::kCompute;
  }
}

/// Tiles row.[start, start+seconds) with `segs`, accumulating bucket totals
/// and the coalesced winning-segment sequence. At any instant the winner is
/// the live segment with the smallest (priority, bucket, index); gaps fall
/// to `filler`.
void sweep(CritRow* row, std::vector<Seg> segs, CritBucket filler) {
  const double lo = row->start;
  const double hi = row->start + row->seconds;
  std::vector<double> bounds;
  bounds.reserve(segs.size() * 2 + 2);
  bounds.push_back(lo);
  bounds.push_back(hi);
  for (const Seg& s : segs) {
    bounds.push_back(s.t0);
    bounds.push_back(s.t1);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  const std::size_t nb = bounds.size();
  std::vector<std::vector<const Seg*>> adds(nb), removes(nb);
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.index < b.index;
  });
  for (const Seg& s : segs) {
    const auto i0 = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), s.t0) - bounds.begin());
    const auto i1 = static_cast<std::size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), s.t1) - bounds.begin());
    if (i0 >= i1) continue;
    adds[i0].push_back(&s);
    removes[i1].push_back(&s);
  }

  using Key = std::tuple<int, int, std::size_t>;
  std::map<Key, const Seg*> active;
  auto key_of = [](const Seg* s) {
    return Key{s->priority, s->bucket, s->index};
  };
  for (std::size_t i = 0; i + 1 < nb; ++i) {
    for (const Seg* s : removes[i]) active.erase(key_of(s));
    for (const Seg* s : adds[i]) active.emplace(key_of(s), s);
    const double width = bounds[i + 1] - bounds[i];
    if (width <= 0) continue;
    const Seg* win = active.empty() ? nullptr : active.begin()->second;
    const CritBucket bucket =
        win != nullptr ? static_cast<CritBucket>(win->bucket) : filler;
    row->buckets[static_cast<std::size_t>(bucket)] += width;
    static const std::string kNoName;
    const std::string& name = win != nullptr ? *win->name : kNoName;
    const SpanId holder = win != nullptr ? win->holder : 0;
    if (!row->segments.empty()) {
      CritSegment& last = row->segments.back();
      if (last.bucket == bucket && last.name == name &&
          last.holder == holder) {
        last.seconds += width;
        continue;
      }
    }
    CritSegment seg;
    seg.start = bounds[i];
    seg.seconds = width;
    seg.bucket = bucket;
    seg.name = name;
    seg.holder = holder;
    row->segments.push_back(std::move(seg));
  }
}

}  // namespace

const char* crit_bucket_name(CritBucket b) {
  return kBucketNames[static_cast<std::size_t>(b)];
}

CritReport analyze_critical_paths(const std::vector<TraceEvent>& events) {
  CritReport report;

  // Pass 1: span registry and root rows.
  std::map<SpanId, SpanInfo> spans;
  std::map<SpanId, int> root_row;
  for (const TraceEvent& ev : events) {
    if (ev.phase != 'X' || ev.id == 0) continue;
    SpanInfo info;
    info.parent = ev.parent;
    if (const TraceArg* a = find_arg(ev, "bucket")) {
      if (a->s == "metadata") info.hint = Hint::kMetadata;
      if (a->s == "repo") info.hint = Hint::kRepo;
    }
    spans[ev.id] = info;
    ++report.spans_seen;
    if (!is_root_span(ev)) continue;
    CritRow row;
    row.kind = ev.name;
    row.lane = ev.lane;
    row.span = ev.id;
    row.start = ev.ts;
    row.seconds = ev.dur;
    const TraceArg* inst = find_arg(ev, "instance");
    row.instance = inst != nullptr ? inst->u : ev.lane;
    root_row[ev.id] = static_cast<int>(report.rows.size());
    report.rows.push_back(std::move(row));
  }

  // Pass 2: resolve each span to its root row and nearest-ancestor hint,
  // memoized along parent chains (iterative to keep the stack shallow).
  std::map<SpanId, Resolved> resolved;
  auto resolve = [&](SpanId id) -> Resolved {
    std::vector<SpanId> chain;
    Resolved res;
    SpanId cur = id;
    while (cur != 0) {
      auto memo = resolved.find(cur);
      if (memo != resolved.end()) {
        res = memo->second;
        break;
      }
      chain.push_back(cur);
      auto it = spans.find(cur);
      if (it == spans.end()) break;  // unknown span: no root, no hint
      auto root = root_row.find(cur);
      if (root != root_row.end()) {
        res.row = root->second;
        res.hint = it->second.hint;
        break;
      }
      cur = it->second.parent;
    }
    // Unwind: fill hints nearest-first and memoize every visited span.
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      auto it = spans.find(*rit);
      if (it != spans.end() && it->second.hint != Hint::kNone) {
        res.hint = it->second.hint;
      }
      resolved[*rit] = res;
    }
    return res;
  };

  // Pass 3: clip cost events into their root's window.
  std::vector<std::vector<Seg>> per_row(report.rows.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.phase != 'X' || ev.dur <= 0) continue;
    if (ev.cat != "wait" && ev.cat != "svc") continue;
    if (ev.span == 0) continue;
    ++report.cost_events;
    const Resolved res = resolve(ev.span);
    if (res.row < 0) continue;  // background or phase-level work
    CritRow& row = report.rows[static_cast<std::size_t>(res.row)];
    Seg seg;
    seg.t0 = std::max(ev.ts, row.start);
    seg.t1 = std::min(ev.ts + ev.dur, row.start + row.seconds);
    if (seg.t1 <= seg.t0) continue;
    seg.index = i;
    seg.name = &ev.name;
    int priority = 0;
    CritBucket bucket = CritBucket::kCompute;
    classify(ev, res.hint, &priority, &bucket);
    seg.priority = priority;
    seg.bucket = static_cast<int>(bucket);
    if (const TraceArg* holder = find_arg(ev, "holder")) seg.holder = holder->u;
    per_row[static_cast<std::size_t>(res.row)].push_back(seg);
  }

  // Pass 4: tile each root. Uncovered time in a boot/resume is the guest
  // actually booting; elsewhere it is generic compute.
  for (std::size_t r = 0; r < report.rows.size(); ++r) {
    CritRow& row = report.rows[r];
    const CritBucket filler = row.kind == "snapshot" ? CritBucket::kCompute
                                                     : CritBucket::kBootInit;
    sweep(&row, std::move(per_row[r]), filler);
  }

  std::sort(report.rows.begin(), report.rows.end(),
            [](const CritRow& a, const CritRow& b) {
              return std::tie(a.kind, a.instance, a.start, a.span) <
                     std::tie(b.kind, b.instance, b.start, b.span);
            });
  return report;
}

namespace {

/// Per-kind aggregate used by both the JSON summary and the table.
struct KindStats {
  std::uint64_t count = 0;
  double total = 0;
  double max = 0;
  std::array<double, kCritBucketCount> buckets{};
};

std::map<std::string, KindStats> summarize(const CritReport& report) {
  std::map<std::string, KindStats> by_kind;
  for (const CritRow& row : report.rows) {
    KindStats& ks = by_kind[row.kind];
    ++ks.count;
    ks.total += row.seconds;
    ks.max = std::max(ks.max, row.seconds);
    for (std::size_t b = 0; b < kCritBucketCount; ++b) {
      ks.buckets[b] += row.buckets[b];
    }
  }
  return by_kind;
}

}  // namespace

std::string attribution_json(const CritReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("buckets").begin_array();
  for (const char* name : kBucketNames) w.value(name);
  w.end_array();
  w.key("rows").begin_array();
  for (const CritRow& row : report.rows) {
    w.begin_object();
    w.key("kind").value(row.kind);
    w.key("instance").value(row.instance);
    w.key("lane").value(static_cast<std::uint64_t>(row.lane));
    w.key("span").value(row.span);
    w.key("start").value(row.start);
    w.key("seconds").value(row.seconds);
    w.key("attribution").begin_object();
    for (std::size_t b = 0; b < kCritBucketCount; ++b) {
      w.key(kBucketNames[b]).value(row.buckets[b]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  for (const auto& [kind, ks] : summarize(report)) {
    w.key(kind).begin_object();
    w.key("count").value(ks.count);
    w.key("mean_seconds")
        .value(ks.count > 0 ? ks.total / static_cast<double>(ks.count) : 0.0);
    w.key("max_seconds").value(ks.max);
    w.key("buckets").begin_object();
    for (std::size_t b = 0; b < kCritBucketCount; ++b) {
      w.key(kBucketNames[b]).value(ks.buckets[b]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string attribution_table(const CritReport& report) {
  std::string out;
  if (report.rows.empty()) {
    return "critpath: no root spans (vm/boot, vm/resume, cloud/snapshot) "
           "found in trace\n";
  }

  {
    std::vector<std::string> header = {"kind", "count", "mean_s", "max_s"};
    for (const char* name : kBucketNames) header.emplace_back(name);
    Table t(header);
    for (const auto& [kind, ks] : summarize(report)) {
      std::vector<std::string> cells = {
          kind, std::to_string(ks.count),
          Table::num(ks.total / static_cast<double>(ks.count), 3),
          Table::num(ks.max, 3)};
      for (std::size_t b = 0; b < kCritBucketCount; ++b) {
        cells.push_back(Table::num(ks.buckets[b], 3));
      }
      t.add_row(cells);
    }
    out += "Critical-path attribution by kind (seconds summed over "
           "instances)\n";
    out += t.to_string();
  }

  {
    std::vector<std::string> header = {"kind", "inst", "lane", "seconds"};
    for (const char* name : kBucketNames) header.emplace_back(name);
    Table t(header);
    for (const CritRow& row : report.rows) {
      std::vector<std::string> cells = {
          row.kind, std::to_string(row.instance), std::to_string(row.lane),
          Table::num(row.seconds, 3)};
      for (std::size_t b = 0; b < kCritBucketCount; ++b) {
        cells.push_back(Table::num(row.buckets[b], 3));
      }
      t.add_row(cells);
    }
    out += "\nPer-instance breakdown\n";
    out += t.to_string();
  }

  const CritRow* slow = &report.rows.front();
  for (const CritRow& row : report.rows) {
    if (row.seconds > slow->seconds) slow = &row;
  }
  std::vector<const CritSegment*> segs;
  segs.reserve(slow->segments.size());
  for (const CritSegment& s : slow->segments) segs.push_back(&s);
  std::sort(segs.begin(), segs.end(),
            [](const CritSegment* a, const CritSegment* b) {
              if (a->seconds != b->seconds) return a->seconds > b->seconds;
              return a->start < b->start;
            });
  if (segs.size() > 8) segs.resize(8);
  Table t({"start_s", "seconds", "bucket", "event", "holder"});
  for (const CritSegment* s : segs) {
    t.add_row({Table::num(s->start, 4),
               Table::num(s->seconds, 4), crit_bucket_name(s->bucket),
               s->name.empty() ? "(uncovered)" : s->name,
               s->holder != 0 ? std::to_string(s->holder) : "-"});
  }
  out += "\nSlowest instance: " + slow->kind + " #" +
         std::to_string(slow->instance) + " (" +
         Table::num(slow->seconds, 3) +
         " s) — largest critical-path segments\n";
  out += t.to_string();
  return out;
}

// ---------------------------------------------------------------------------
// JSONL parsing (the inverse of Tracer::jsonl()).

namespace {

/// Minimal JSON cursor for one jsonl line. Only the shapes the tracer emits
/// are fully materialized (flat object, string/number scalars, one nested
/// "args" object); anything else is skipped structurally.
class LineParser {
 public:
  explicit LineParser(std::string_view line)
      : start_(line.data()), p_(line.data()), end_(line.data() + line.size()) {}

  Status parse_event(TraceEvent* ev) {
    skip_ws();
    if (!consume('{')) return fail("expected '{'");
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      if (!first && !consume(',')) return fail("expected ',' or '}'");
      first = false;
      skip_ws();
      std::string key;
      VMSTORM_RETURN_IF_ERROR(parse_string(&key));
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      VMSTORM_RETURN_IF_ERROR(parse_field(key, ev));
    }
    skip_ws();
    if (p_ != end_) return fail("trailing bytes after event object");
    return Status::ok();
  }

 private:
  Status fail(const std::string& msg) const {
    return invalid_argument("trace jsonl: " + msg + " at offset " +
                            std::to_string(p_ - start_));
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
  }
  bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Status parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (p_ == end_) return fail("dangling escape");
      char e = *p_++;
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (end_ - p_ < 4) return fail("short \\u escape");
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(p_, p_ + 4, code, 16);
          if (ec != std::errc() || ptr != p_ + 4) {
            return fail("bad \\u escape");
          }
          p_ += 4;
          if (code > 0x7f) return fail("non-ASCII \\u escape unsupported");
          *out += static_cast<char>(code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (!consume('"')) return fail("unterminated string");
    return Status::ok();
  }

  /// Numbers are captured as a token; integer-looking tokens additionally
  /// yield an exact uint64 so span ids survive the round trip.
  Status parse_number(double* d, std::uint64_t* u, bool* is_uint) {
    const char* start = p_;
    while (p_ != end_ &&
           (*p_ == '-' || *p_ == '+' || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || (*p_ >= '0' && *p_ <= '9'))) {
      ++p_;
    }
    if (p_ == start) return fail("expected number");
    const std::string_view tok(start, static_cast<std::size_t>(p_ - start));
    *is_uint = tok.find_first_not_of("0123456789") == std::string_view::npos;
    if (*is_uint) {
      auto [ptr, ec] = std::from_chars(start, p_, *u);
      if (ec != std::errc() || ptr != p_) return fail("bad integer");
      *d = static_cast<double>(*u);
      return Status::ok();
    }
    auto [ptr, ec] = std::from_chars(start, p_, *d);
    if (ec != std::errc() || ptr != p_) return fail("bad number");
    *u = 0;
    return Status::ok();
  }

  Status parse_field(const std::string& key, TraceEvent* ev) {
    if (key == "name" || key == "cat" || key == "ph") {
      std::string s;
      VMSTORM_RETURN_IF_ERROR(parse_string(&s));
      if (key == "name") {
        ev->name = std::move(s);
      } else if (key == "cat") {
        ev->cat = std::move(s);
      } else {
        if (s.size() != 1) return fail("ph must be one character");
        ev->phase = s[0];
      }
      return Status::ok();
    }
    if (key == "args") return parse_args(ev);
    double d = 0;
    std::uint64_t u = 0;
    bool is_uint = false;
    VMSTORM_RETURN_IF_ERROR(parse_number(&d, &u, &is_uint));
    if (key == "ts") {
      ev->ts = d;
    } else if (key == "dur") {
      ev->dur = d;
    } else if (key == "lane") {
      ev->lane = static_cast<std::uint32_t>(u);
    } else if (key == "id") {
      ev->id = u;
    } else if (key == "parent") {
      ev->parent = u;
    } else if (key == "span") {
      ev->span = u;
    }
    // Unknown numeric keys (e.g. chrome-only fields) are ignored.
    return Status::ok();
  }

  Status parse_args(TraceEvent* ev) {
    if (!consume('{')) return fail("args must be an object");
    bool first = true;
    while (true) {
      skip_ws();
      if (consume('}')) return Status::ok();
      if (!first && !consume(',')) return fail("expected ',' or '}' in args");
      first = false;
      skip_ws();
      std::string key;
      VMSTORM_RETURN_IF_ERROR(parse_string(&key));
      skip_ws();
      if (!consume(':')) return fail("expected ':' in args");
      skip_ws();
      if (p_ != end_ && *p_ == '"') {
        std::string s;
        VMSTORM_RETURN_IF_ERROR(parse_string(&s));
        ev->args.push_back(TraceArg::str(std::move(key), std::move(s)));
        continue;
      }
      double d = 0;
      std::uint64_t u = 0;
      bool is_uint = false;
      VMSTORM_RETURN_IF_ERROR(parse_number(&d, &u, &is_uint));
      ev->args.push_back(is_uint ? TraceArg::uint(std::move(key), u)
                                 : TraceArg::num(std::move(key), d));
    }
  }

  const char* start_;
  const char* p_;
  const char* end_;
};

}  // namespace

Result<std::vector<TraceEvent>> parse_trace_jsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    TraceEvent ev;
    Status st = LineParser(line).parse_event(&ev);
    if (!st.is_ok()) {
      return Status(st.code(), "line " + std::to_string(line_no) + ": " +
                                   st.message());
    }
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace vmstorm::obs
