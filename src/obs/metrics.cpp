#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "obs/json.hpp"

namespace vmstorm::obs {

ExpHistogram::ExpHistogram(HistogramOptions opts)
    : opts_(opts), counts_(opts.buckets == 0 ? 1 : opts.buckets, 0) {
  assert(opts_.first_bound > 0 && opts_.growth > 1.0);
}

double ExpHistogram::bucket_bound(std::size_t i) const {
  double b = opts_.first_bound;
  for (std::size_t k = 0; k < i; ++k) b *= opts_.growth;
  return b;
}

void ExpHistogram::record(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  std::size_t i = 0;
  double bound = opts_.first_bound;
  while (x > bound && i + 1 < counts_.size()) {
    bound *= opts_.growth;
    ++i;
  }
  ++counts_[i];
}

double ExpHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = i == 0 ? 0.0 : bucket_bound(i - 1);
      const double hi =
          i + 1 == counts_.size() ? max_ : bucket_bound(i);
      const double frac =
          (target - before) / static_cast<double>(counts_[i]);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, min_, max_);
    }
  }
  return max_;
}

void TimeWeighted::set(double t, double v) {
  if (!started_) {
    started_ = true;
    start_t_ = last_t_ = t;
    value_ = max_ = v;
    return;
  }
  assert(t >= last_t_ && "time-weighted samples must not go backwards");
  integral_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = v;
  max_ = std::max(max_, v);
}

double TimeWeighted::average(double t_end) const {
  if (!started_ || t_end <= start_t_) return started_ ? value_ : 0.0;
  const double span = t_end - start_t_;
  const double tail = value_ * (t_end - last_t_);
  return (integral_ + tail) / span;
}

std::string Registry::encode_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  auto& slot = counters_[encode_key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  auto& slot = gauges_[encode_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ExpHistogram& Registry::histogram(std::string_view name, const Labels& labels,
                                  HistogramOptions opts) {
  auto& slot = histograms_[encode_key(name, labels)];
  if (!slot) slot = std::make_unique<ExpHistogram>(opts);
  return *slot;
}

TimeWeighted& Registry::time_weighted(std::string_view name,
                                      const Labels& labels) {
  auto& slot = time_weighted_[encode_key(name, labels)];
  if (!slot) slot = std::make_unique<TimeWeighted>();
  return *slot;
}

Gauge& Registry::host_gauge(std::string_view name, const Labels& labels) {
  auto& slot = host_gauges_[encode_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [key, c] : counters_) w.key(key).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [key, g] : gauges_) w.key(key).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [key, h] : histograms_) {
    w.key(key).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("p50").value(h->percentile(50));
    w.key("p95").value(h->percentile(95));
    w.key("p99").value(h->percentile(99));
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      if (h->bucket(i) == 0) continue;  // sparse: most buckets are empty
      w.begin_array().value(h->bucket_bound(i)).value(h->bucket(i)).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("time_weighted").begin_object();
  for (const auto& [key, t] : time_weighted_) {
    w.key(key).begin_object();
    w.key("last").value(t->value());
    w.key("max").value(t->max());
    w.key("avg").value(t->average(t->last_time()));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

void Registry::write_host_json(JsonWriter& w) const {
  w.begin_object();
  w.key("host_gauges").begin_object();
  for (const auto& [key, g] : host_gauges_) w.key(key).value(g->value());
  w.end_object();
  w.end_object();
}

std::string Registry::host_json() const {
  JsonWriter w;
  write_host_json(w);
  return w.take();
}

}  // namespace vmstorm::obs
