#include "obs/selfprof.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"

namespace vmstorm::obs {

const char* SelfProfiler::phase_name(int phase) {
  switch (phase) {
    case kQueueOps: return "queue_ops";
    case kAuditor: return "auditor";
    case kResume: return "resume";
    case kTracer: return "tracer";
    default: return "?";
  }
}

double SelfProfiler::wall_now() {
  // vmlint:allow(determinism) the one sanctioned wall-clock read: host-side
  // self-profiling by design; results never feed back into the simulation.
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

void SelfProfiler::reset() {
  for (double& s : seconds_) s = 0;
  run_seconds_ = 0;
}

double SelfProfiler::dispatch_seconds() const {
  const double d = run_seconds_ - seconds_[kQueueOps] - seconds_[kAuditor] -
                   seconds_[kResume];
  return d > 0 ? d : 0;
}

double SelfProfiler::user_seconds() const {
  const double u = seconds_[kResume] - seconds_[kTracer];
  return u > 0 ? u : 0;
}

void SelfProfiler::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("wall_seconds").value(run_seconds_);
  w.key("phases").begin_object();
  w.key("queue_ops").value(seconds_[kQueueOps]);
  w.key("auditor").value(seconds_[kAuditor]);
  w.key("resume").value(seconds_[kResume]);
  w.key("tracer").value(seconds_[kTracer]);
  w.key("dispatch").value(dispatch_seconds());
  w.key("user_work").value(user_seconds());
  w.end_object();
  w.end_object();
}

namespace {

/// Reads a "Vm...: N kB" line from /proc/self/status; returns bytes.
std::uint64_t proc_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM"); }

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS"); }

}  // namespace vmstorm::obs
