#include "obs/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace vmstorm::obs {

void json_escape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

std::string json_number(std::int64_t v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!after_key_);
  element();
  out_ += '"';
  json_escape(k, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element();
  out_ += '"';
  json_escape(s, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  element();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  element();
  out_ += json;
  return *this;
}

}  // namespace vmstorm::obs
