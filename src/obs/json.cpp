#include "obs/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace vmstorm::obs {

void json_escape(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

std::string json_number(std::uint64_t v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

std::string json_number(std::int64_t v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!first_.empty());
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!after_key_);
  element();
  out_ += '"';
  json_escape(k, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  element();
  out_ += '"';
  json_escape(s, &out_);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  element();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  element();
  out_ += json;
  return *this;
}

// ---- JsonValue / parse_json ----------------------------------------------

namespace {

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyItems;
const JsonValue::Members kEmptyMembers;
const JsonValue kNullValue;

}  // namespace

const std::string& JsonValue::as_string() const {
  return is_string() ? string_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::items() const {
  return is_array() ? items_ : kEmptyItems;
}

const JsonValue::Members& JsonValue::members() const {
  return is_object() && members_ ? *members_ : kEmptyMembers;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object() || !members_) return nullptr;
  for (const auto& [k, v] : *members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.flag_ = b;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Members members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::make_shared<Members>(std::move(members));
  return v;
}

namespace {

/// Recursive-descent JSON parser over a string_view. Strict: exactly the
/// RFC 8259 grammar, bounded nesting, whole-input consumption.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    VMSTORM_ASSIGN_OR_RETURN(v, parse_value(0));
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status fail(const std::string& what) const {
    return invalid_argument("json parse error at byte " +
                            std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Result<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        VMSTORM_ASSIGN_OR_RETURN(s, parse_string());
        return JsonValue::make_string(std::move(s));
      }
      case 't':
        if (consume_word("true")) return JsonValue::make_bool(true);
        return fail("invalid literal");
      case 'f':
        if (consume_word("false")) return JsonValue::make_bool(false);
        return fail("invalid literal");
      case 'n':
        if (consume_word("null")) return JsonValue::make_null();
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue::Members members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      VMSTORM_ASSIGN_OR_RETURN(key, parse_string());
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      VMSTORM_ASSIGN_OR_RETURN(v, parse_value(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      VMSTORM_ASSIGN_OR_RETURN(v, parse_value(depth + 1));
      items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the writer only ever emits \u00XX control escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    double v = 0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || end != text_.data() + pos_) {
      return fail("malformed number");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace vmstorm::obs
