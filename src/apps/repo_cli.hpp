// vmstormctl: command-line manipulation of an on-disk vmstorm repository —
// the upload/download/clone/snapshot operations the paper's cloud client
// performs against the image store (§3.2 "the cloud client has direct
// access to the storage service and is allowed to upload and download
// images from it").
//
// The command core is a library function so tests can drive it; the
// `vmstormctl` binary is a thin wrapper.
//
// Commands:
//   init <repo> [--providers N] [--replication R] [--chunk SIZE] [--dedup]
//   ls <repo>
//   stat <repo> <blob>
//   upload <repo> <file>                 -> prints the new blob id
//   download <repo> <blob> <version> <file>
//   clone <repo> <blob> <version>        -> prints the new blob id
//   patch <repo> <blob> <offset> <file>  -> commits file content at offset,
//                                           prints the new version
//   critpath <trace.jsonl>               -> critical-path attribution tables
//                                           from a TRACE_*.jsonl artifact
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace vmstorm::apps {

/// Executes one vmstormctl command; returns its stdout text.
Result<std::string> run_repo_cli(const std::vector<std::string>& args);

/// "256K" / "4M" / "1G" / plain bytes -> byte count.
Result<Bytes> parse_size(const std::string& text);

/// Usage text for the binary.
std::string repo_cli_usage();

}  // namespace vmstorm::apps
