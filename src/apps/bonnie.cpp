#include "apps/bonnie.hpp"

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/selfprof.hpp"

namespace vmstorm::apps {

namespace {

// Bonnie measures REAL filesystem throughput (imgfs over memory or POSIX
// devices), not simulated time. All host timing funnels through the one
// sanctioned wall-clock read, obs::SelfProfiler::wall_now().
double wall_now() { return obs::SelfProfiler::wall_now(); }

double seconds_since(double t0) { return wall_now() - t0; }

void fill_block(std::vector<std::byte>* buf, Rng* rng) {
  // Cheap non-constant content: one RNG word per 64 bytes, splatted.
  for (std::size_t i = 0; i < buf->size(); i += 64) {
    const std::uint64_t w = rng->next_u64();
    (*buf)[i] = static_cast<std::byte>(w & 0xff);
  }
}

}  // namespace

Result<BonnieResult> run_bonnie(imgfs::FileSystem& fs,
                                const BonnieConfig& cfg) {
  if (cfg.block == 0 || cfg.total == 0 || cfg.file_size < cfg.block) {
    return invalid_argument("bad bonnie configuration");
  }
  BonnieResult out;
  Rng rng(cfg.seed);
  const std::size_t n_files =
      static_cast<std::size_t>((cfg.total + cfg.file_size - 1) / cfg.file_size);
  std::vector<imgfs::InodeId> files;
  std::vector<std::byte> buf(cfg.block);

  // Phase 1: sequential block writes.
  {
    const auto t0 = wall_now();
    Bytes remaining = cfg.total;
    for (std::size_t f = 0; f < n_files; ++f) {
      VMSTORM_ASSIGN_OR_RETURN(id, fs.create("bonnie." + std::to_string(f)));
      files.push_back(id);
      Bytes this_file = std::min<Bytes>(cfg.file_size, remaining);
      for (Bytes off = 0; off < this_file; off += cfg.block) {
        fill_block(&buf, &rng);
        VMSTORM_RETURN_IF_ERROR(fs.write(id, off, buf));
      }
      remaining -= this_file;
    }
    out.block_write_kbps = static_cast<double>(cfg.total) / 1024.0 /
                           seconds_since(t0);
  }

  // Phase 2: sequential block reads of everything just written.
  {
    const auto t0 = wall_now();
    for (imgfs::InodeId id : files) {
      VMSTORM_ASSIGN_OR_RETURN(st, fs.stat(id));
      for (Bytes off = 0; off + cfg.block <= st.size; off += cfg.block) {
        VMSTORM_RETURN_IF_ERROR(fs.read(id, off, buf));
      }
    }
    out.block_read_kbps =
        static_cast<double>(cfg.total) / 1024.0 / seconds_since(t0);
  }

  // Phase 3: sequential block overwrite.
  {
    const auto t0 = wall_now();
    for (imgfs::InodeId id : files) {
      VMSTORM_ASSIGN_OR_RETURN(st, fs.stat(id));
      for (Bytes off = 0; off + cfg.block <= st.size; off += cfg.block) {
        fill_block(&buf, &rng);
        VMSTORM_RETURN_IF_ERROR(fs.write(id, off, buf));
      }
    }
    out.block_overwrite_kbps =
        static_cast<double>(cfg.total) / 1024.0 / seconds_since(t0);
  }

  // Phase 4: random seeks (seek + 8 KiB read at a random file offset).
  {
    const auto t0 = wall_now();
    for (std::uint32_t i = 0; i < cfg.seek_ops; ++i) {
      const imgfs::InodeId id = files[rng.uniform_u64(files.size())];
      VMSTORM_ASSIGN_OR_RETURN(st, fs.stat(id));
      if (st.size < cfg.block) continue;
      const Bytes off =
          rng.uniform_u64(st.size - cfg.block) & ~(cfg.block - 1);
      VMSTORM_RETURN_IF_ERROR(fs.read(id, off, buf));
    }
    out.random_seeks_per_s = cfg.seek_ops / seconds_since(t0);
  }

  // Phase 5/6: file creation / deletion rates (empty files).
  {
    const auto t0 = wall_now();
    for (std::uint32_t i = 0; i < cfg.file_ops; ++i) {
      VMSTORM_ASSIGN_OR_RETURN(id, fs.create("tmp." + std::to_string(i)));
      (void)id;
    }
    out.creates_per_s = cfg.file_ops / seconds_since(t0);
  }
  {
    const auto t0 = wall_now();
    for (std::uint32_t i = 0; i < cfg.file_ops; ++i) {
      VMSTORM_RETURN_IF_ERROR(fs.remove("tmp." + std::to_string(i)));
    }
    out.deletes_per_s = cfg.file_ops / seconds_since(t0);
  }
  return out;
}

}  // namespace vmstorm::apps
