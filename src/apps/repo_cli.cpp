#include "apps/repo_cli.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <fstream>
#include <sstream>

#include "blob/persist.hpp"
#include "blob/store.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/phases.hpp"

namespace vmstorm::apps {

namespace {

constexpr Bytes kDefaultChunk = 256_KiB;

Result<std::vector<std::byte>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

Status write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return unavailable("cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::ok() : unavailable("write failed");
}

Result<std::uint64_t> parse_u64(const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument("not a number: " + text);
  }
  return static_cast<std::uint64_t>(v);
}

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --name value / --name
};

Result<Parsed> parse_args(const std::vector<std::string>& args) {
  if (args.empty()) return invalid_argument("no command; try: " + repo_cli_usage());
  Parsed p;
  p.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      const std::string name = args[i].substr(2);
      if (name == "dedup") {
        p.flags[name] = "1";
      } else {
        if (i + 1 >= args.size()) {
          return invalid_argument("flag --" + name + " needs a value");
        }
        p.flags[name] = args[++i];
      }
    } else {
      p.positional.push_back(args[i]);
    }
  }
  return p;
}

Result<std::unique_ptr<blob::BlobStore>> open_repo(const std::string& path) {
  return blob::load_store_file(path);
}

Result<std::string> cmd_init(const Parsed& p) {
  if (p.positional.size() != 1) return invalid_argument("init <repo>");
  blob::StoreConfig cfg;
  cfg.providers = 8;
  if (auto it = p.flags.find("providers"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(n, parse_u64(it->second));
    if (n == 0) return invalid_argument("--providers must be > 0");
    cfg.providers = n;
  }
  if (auto it = p.flags.find("replication"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(r, parse_u64(it->second));
    cfg.replication = r;
  }
  cfg.dedup = p.flags.count("dedup") > 0;
  blob::BlobStore store(cfg);
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(store, p.positional[0]));
  std::ostringstream os;
  os << "initialized repository " << p.positional[0] << " (" << cfg.providers
     << " providers, replication " << cfg.replication
     << (cfg.dedup ? ", dedup on" : "") << ")\n";
  return os.str();
}

Result<std::string> cmd_ls(const Parsed& p) {
  if (p.positional.size() != 1) return invalid_argument("ls <repo>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  Table t({"blob", "size", "chunk", "latest", "versions"});
  // Blob ids are dense from 1; probe until the directory runs out.
  std::size_t seen = 0;
  for (blob::BlobId id = 1; seen < store->blob_count() && id < 1u << 20; ++id) {
    auto info = store->info(id);
    if (!info.is_ok()) continue;
    ++seen;
    t.add_row({std::to_string(id),
               format_bytes(static_cast<double>(info->size)),
               format_bytes(static_cast<double>(info->chunk_size)),
               std::to_string(info->latest),
               std::to_string(info->latest + 1)});
  }
  std::ostringstream os;
  os << t.to_string() << store->blob_count() << " blob(s), "
     << format_bytes(static_cast<double>(store->stored_bytes()))
     << " stored\n";
  return os.str();
}

Result<std::string> cmd_stat(const Parsed& p) {
  if (p.positional.size() != 2) return invalid_argument("stat <repo> <blob>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  std::ostringstream os;
  os << "blob " << id << ": size "
     << format_bytes(static_cast<double>(info.size)) << ", "
     << info.chunk_count << " chunks of "
     << format_bytes(static_cast<double>(info.chunk_size)) << ", versions 0.."
     << info.latest << "\n";
  return os.str();
}

Result<std::string> cmd_upload(const Parsed& p) {
  if (p.positional.size() != 2) return invalid_argument("upload <repo> <file>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(data, read_file(p.positional[1]));
  if (data.empty()) return invalid_argument("refusing to upload an empty file");
  Bytes chunk = kDefaultChunk;
  if (auto it = p.flags.find("chunk"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(c, parse_size(it->second));
    chunk = c;
  }
  VMSTORM_ASSIGN_OR_RETURN(id, store->create(data.size(), chunk));
  VMSTORM_ASSIGN_OR_RETURN(v, store->write(id, 0, 0, data));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "uploaded " << p.positional[1] << " as blob " << id << " version " << v
     << " (" << format_bytes(static_cast<double>(data.size())) << ")\n";
  return os.str();
}

Result<std::string> cmd_download(const Parsed& p) {
  if (p.positional.size() != 4) {
    return invalid_argument("download <repo> <blob> <version> <file>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(version, parse_u64(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  std::vector<std::byte> data(info.size);
  VMSTORM_RETURN_IF_ERROR(store->read(static_cast<blob::BlobId>(id),
                                      static_cast<blob::Version>(version), 0,
                                      data));
  VMSTORM_RETURN_IF_ERROR(write_file(p.positional[3], data));
  std::ostringstream os;
  os << "downloaded blob " << id << " v" << version << " to " << p.positional[3]
     << " (" << format_bytes(static_cast<double>(data.size())) << ")\n";
  return os.str();
}

Result<std::string> cmd_clone(const Parsed& p) {
  if (p.positional.size() != 3) {
    return invalid_argument("clone <repo> <blob> <version>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(version, parse_u64(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(
      clone, store->clone(static_cast<blob::BlobId>(id),
                          static_cast<blob::Version>(version)));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "cloned blob " << id << " v" << version << " as blob " << clone
     << " (zero data copied)\n";
  return os.str();
}

Result<std::string> cmd_patch(const Parsed& p) {
  if (p.positional.size() != 4) {
    return invalid_argument("patch <repo> <blob> <offset> <file>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(offset, parse_size(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(data, read_file(p.positional[3]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  VMSTORM_ASSIGN_OR_RETURN(
      v, store->write(static_cast<blob::BlobId>(id), info.latest, offset, data));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "patched blob " << id << " at offset " << offset << ": new version "
     << v << "\n";
  return os.str();
}

Result<std::string> cmd_critpath(const Parsed& p) {
  if (p.positional.size() != 1) {
    return invalid_argument("critpath <trace.jsonl>");
  }
  std::ifstream in(p.positional[0], std::ios::binary);
  if (!in) return not_found("cannot open " + p.positional[0]);
  std::ostringstream text;
  text << in.rdbuf();
  VMSTORM_ASSIGN_OR_RETURN(events, obs::parse_trace_jsonl(text.str()));
  const obs::CritReport report = obs::analyze_critical_paths(events);
  return obs::attribution_table(report);
}

Result<std::string> cmd_engine_stats(const Parsed& p) {
  if (p.positional.size() != 1) {
    return invalid_argument("engine-stats <BENCH_engine.json>");
  }
  std::ifstream in(p.positional[0], std::ios::binary);
  if (!in) return not_found("cannot open " + p.positional[0]);
  std::ostringstream text;
  text << in.rdbuf();
  VMSTORM_ASSIGN_OR_RETURN(doc, obs::parse_json(text.str()));
  if (doc["schema"].as_string() != "vmstorm-engine-v1") {
    return invalid_argument("not a vmstorm-engine-v1 artifact (schema: \"" +
                            doc["schema"].as_string() + "\")");
  }

  std::ostringstream os;
  os << doc["title"].as_string() << " ("
     << (doc["quick"].as_bool() ? "quick" : "full") << " mode, config "
     << doc["config"]["fingerprint"].as_string() << ")\n\n";

  // Deterministic engine counters — same for every arm by construction.
  const obs::JsonValue& sim = doc["sim"];
  Table counters({"engine counter", "value"});
  for (const auto& [key, v] : sim.members()) {
    if (!v.is_number()) continue;  // nested trace section rendered below
    counters.add_row({key, Table::num(v.as_number(), 0)});
  }
  const obs::JsonValue& trace = sim["trace"];
  for (const auto& [key, v] : trace.members()) {
    counters.add_row({"trace." + key, Table::num(v.as_number(), 0)});
  }
  os << counters.to_string() << "\n";

  // Tracing ablation: host-time costs per arm, overhead vs tracing off.
  const obs::JsonValue& arms = doc["overhead"]["arms"];
  double off_wall = 0;
  for (const obs::JsonValue& arm : arms.items()) {
    if (arm["name"].as_string() == "off") off_wall = arm["wall_seconds"].as_number();
  }
  Table ablation({"arm", "wall s", "events/s", "overhead", "tracer s",
                  "dispatch s", "peak rss", "events recorded"});
  for (const obs::JsonValue& arm : arms.items()) {
    const double wall = arm["wall_seconds"].as_number();
    const std::string overhead =
        arm["name"].as_string() == "off" || off_wall <= 0
            ? "-"
            : Table::num((wall - off_wall) / off_wall * 100.0, 1) + "%";
    ablation.add_row(
        {arm["name"].as_string(), Table::num(wall, 3),
         Table::num(arm["events_per_sec"].as_number(), 0), overhead,
         Table::num(arm["phases"]["tracer"].as_number(), 3),
         Table::num(arm["phases"]["dispatch"].as_number(), 3),
         format_bytes(arm["peak_rss_bytes"].as_number()),
         Table::num(arm["trace"]["recorded"].as_number(), 0)});
  }
  os << ablation.to_string();
  return os.str();
}

// ---- `timeline` rendering ------------------------------------------------

std::vector<double> json_doubles(const obs::JsonValue& arr) {
  std::vector<double> out;
  out.reserve(arr.items().size());
  for (const obs::JsonValue& v : arr.items()) out.push_back(v.as_number());
  return out;
}

/// Bucket-averaged sparkline over at most `width` columns; `hi` is the
/// full-scale value (pass 1.0 for utilization series so the glyphs encode
/// absolute level, or a series max for unbounded ones).
std::string sparkline(const std::vector<double>& v, std::size_t width,
                      double hi) {
  static const char kRamp[] = " .:-=+*#%@";  // 10 levels
  if (v.empty()) return "";
  std::string out;
  const std::size_t cols = std::min(width, v.size());
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t b = c * v.size() / cols;
    const std::size_t e = std::max(b + 1, (c + 1) * v.size() / cols);
    double acc = 0;
    for (std::size_t i = b; i < e; ++i) acc += v[i];
    const double m = acc / static_cast<double>(e - b);
    int idx = hi > 0 ? static_cast<int>(m / hi * 9.0 + 0.5) : 0;
    idx = std::clamp(idx, 0, 9);
    out.push_back(kRamp[idx]);
  }
  return out;
}

const obs::JsonValue* find_tl_series(const obs::JsonValue& tl,
                                     std::string_view name) {
  for (const obs::JsonValue& s : tl["series"].items()) {
    if (s["name"].as_string() == name) return &s;
  }
  return nullptr;
}

char regime_char(const std::string& name) {
  if (name == "repo_bound") return 'R';
  if (name == "network_bound") return 'N';
  if (name == "local_disk_bound") return 'D';
  return '.';  // idle
}

std::string pad_to(std::string s, std::size_t width) {
  while (s.size() < width) s.push_back(' ');
  return s;
}

Result<std::string> cmd_timeline(const Parsed& p) {
  if (p.positional.size() != 1) {
    return invalid_argument("timeline <BENCH.json>");
  }
  std::ifstream in(p.positional[0], std::ios::binary);
  if (!in) return not_found("cannot open " + p.positional[0]);
  std::ostringstream text;
  text << in.rdbuf();
  VMSTORM_ASSIGN_OR_RETURN(doc, obs::parse_json(text.str()));
  const obs::JsonValue& tl = doc["timeline"];
  if (!tl.is_object()) {
    return invalid_argument(
        "artifact has no timeline section (sampling was off; rerun the "
        "bench with VMSTORM_TIMELINE=1)");
  }

  const std::vector<double> time = json_doubles(tl["time"]);
  const double cadence = tl["cadence_seconds"].as_number();
  constexpr std::size_t kWidth = 64;
  constexpr std::size_t kLabel = 30;

  std::ostringstream os;
  os << doc["name"].as_string() << ": " << time.size() << " samples, "
     << Table::num(cadence, 2) << "s cadence";
  if (tl["dropped_samples"].as_number() > 0) {
    os << ", " << Table::num(tl["dropped_samples"].as_number(), 0)
       << " oldest overwritten (ring)";
  }
  if (!time.empty()) {
    os << ", window " << Table::num(time.front() - cadence, 2) << "s.."
       << Table::num(time.back(), 2) << "s";
  }
  os << "\n\n";

  // Headline series as sparklines. Utilization rows use a fixed 0..1 scale;
  // unbounded rows are normalized to their own peak (printed alongside).
  struct Headline {
    const char* series;
    double scale;     ///< applied to the peak annotation
    const char* unit;
    bool unit_scale;  ///< true: full-scale 1.0; false: full-scale = peak
  };
  const Headline kHeadlines[] = {
      {"net.throughput_bytes_per_sec", 1e-6, " MB/s peak", false},
      {"util.network", 1.0, " peak", true},
      {"util.repo_disk", 1.0, " peak", true},
      {"util.local_disk", 1.0, " peak", true},
      {"provider.imbalance", 1.0, "x peak", false},
  };
  for (const Headline& h : kHeadlines) {
    const obs::JsonValue* s = find_tl_series(tl, h.series);
    if (s == nullptr) continue;
    const std::vector<double> v = json_doubles((*s)["values"]);
    double peak = 0;
    for (double x : v) peak = std::max(peak, x);
    os << "  " << pad_to(h.series, kLabel) << "|"
       << pad_to(sparkline(v, kWidth, h.unit_scale ? 1.0 : peak), kWidth)
       << "| " << Table::num(peak * h.scale, 2) << h.unit << "\n";
  }

  // Per-provider load heatmap (one sparkline row per provider, capped).
  constexpr std::size_t kMaxHeatRows = 12;
  std::size_t heat_rows = 0, heat_total = 0;
  for (const obs::JsonValue& s : tl["series"].items()) {
    if (s["name"].as_string() != "provider.util") continue;
    ++heat_total;
    if (heat_rows >= kMaxHeatRows) continue;
    ++heat_rows;
    if (heat_rows == 1) os << "\n  provider disk utilization\n";
    os << "  " << pad_to("  p" + s["labels"]["provider"].as_string(), kLabel)
       << "|" << pad_to(sparkline(json_doubles(s["values"]), kWidth, 1.0),
                        kWidth)
       << "|\n";
  }
  if (heat_total > heat_rows) {
    os << "  (" << heat_total - heat_rows << " more providers not shown)\n";
  }

  // Phase segmentation: regime strip, segment table, totals, cross-checks.
  const obs::JsonValue& ph = tl["phases"];
  if (ph.is_object() && !time.empty()) {
    const auto& segs = ph["segments"].items();
    std::vector<char> regs(time.size(), '.');
    std::size_t si = 0;
    for (std::size_t i = 0; i < time.size() && si < segs.size(); ++i) {
      double seg_end = segs[si]["start"].as_number() +
                       segs[si]["seconds"].as_number();
      while (si + 1 < segs.size() && time[i] > seg_end + 1e-9) {
        ++si;
        seg_end = segs[si]["start"].as_number() +
                  segs[si]["seconds"].as_number();
      }
      regs[i] = regime_char(segs[si]["regime"].as_string());
    }
    std::string strip;
    const std::size_t cols = std::min(kWidth, regs.size());
    for (std::size_t c = 0; c < cols; ++c) {
      strip.push_back(regs[c * regs.size() / cols]);
    }
    os << "\n  " << pad_to("regime", kLabel) << "|" << pad_to(strip, kWidth)
       << "| R=repo N=network D=local-disk .=idle\n";

    os << "\n  bottleneck phases\n";
    Table seg_table({"regime", "start s", "seconds"});
    for (const obs::JsonValue& s : segs) {
      seg_table.add_row({s["regime"].as_string(),
                         Table::num(s["start"].as_number(), 2),
                         Table::num(s["seconds"].as_number(), 2)});
    }
    os << seg_table.to_string();

    double totals_sum = 0;
    Table totals({"regime", "seconds", "share"});
    const double duration = ph["duration_seconds"].as_number();
    for (const auto& [key, v] : ph["totals"].members()) {
      totals_sum += v.as_number();
      totals.add_row({key, Table::num(v.as_number(), 2),
                      duration > 0
                          ? Table::num(v.as_number() / duration * 100.0, 1) +
                                "%"
                          : "-"});
    }
    os << "\n" << totals.to_string();

    // The closed-sum invariant, re-verified on the exported artifact.
    const double tol = 1e-6 * std::max(1.0, duration);
    if (std::abs(totals_sum - duration) > tol) {
      return internal_error("phase totals sum " +
                            obs::json_number(totals_sum) +
                            " != duration " + obs::json_number(duration));
    }
    os << "\n  totals sum " << Table::num(totals_sum, 4) << "s == duration "
       << Table::num(duration, 4) << "s (closed)\n";

    // Recompute the segmentation from the exported series and require it
    // to match the embedded one: the analyzer must be a pure function of
    // the artifact.
    const obs::JsonValue* srepo = find_tl_series(tl, "util.repo_disk");
    const obs::JsonValue* snet = find_tl_series(tl, "util.network");
    const obs::JsonValue* slocal = find_tl_series(tl, "util.local_disk");
    if (srepo != nullptr && snet != nullptr && slocal != nullptr) {
      obs::PhaseOptions opts;
      opts.cadence_seconds = cadence;
      const obs::PhaseReport rep = obs::analyze_phases(
          time, json_doubles((*srepo)["values"]),
          json_doubles((*snet)["values"]), json_doubles((*slocal)["values"]),
          opts);
      for (std::size_t k = 0; k < obs::kRegimeCount; ++k) {
        const char* name = obs::regime_name(static_cast<obs::Regime>(k));
        const double embedded = ph["totals"][name].as_number();
        if (std::abs(embedded - rep.totals[k]) > tol) {
          return internal_error(
              std::string("recomputed phases disagree with artifact: ") +
              name + " " + obs::json_number(rep.totals[k]) + "s vs " +
              obs::json_number(embedded) + "s");
        }
      }
      os << "  recomputed segmentation matches the embedded phases ("
         << rep.segments.size() << " segments)\n";
    }
  }
  return os.str();
}

}  // namespace

Result<Bytes> parse_size(const std::string& text) {
  if (text.empty()) return invalid_argument("empty size");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return invalid_argument("not a size: " + text);
  Bytes mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'K': case 'k': mult = kKiB; break;
      case 'M': case 'm': mult = kMiB; break;
      case 'G': case 'g': mult = kGiB; break;
      default: return invalid_argument("bad size suffix in: " + text);
    }
    if (*(end + 1) != '\0') return invalid_argument("bad size: " + text);
  }
  return static_cast<Bytes>(v) * mult;
}

std::string repo_cli_usage() {
  return "vmstormctl <command>\n"
         "  init <repo> [--providers N] [--replication R] [--dedup]\n"
         "  ls <repo>\n"
         "  stat <repo> <blob>\n"
         "  upload <repo> <file> [--chunk SIZE]\n"
         "  download <repo> <blob> <version> <file>\n"
         "  clone <repo> <blob> <version>\n"
         "  patch <repo> <blob> <offset> <file>\n"
         "  critpath <trace.jsonl>\n"
         "  engine-stats <BENCH_engine.json>\n"
         "  timeline <BENCH.json>\n";
}

Result<std::string> run_repo_cli(const std::vector<std::string>& args) {
  VMSTORM_ASSIGN_OR_RETURN(parsed, parse_args(args));
  if (parsed.command == "init") return cmd_init(parsed);
  if (parsed.command == "ls") return cmd_ls(parsed);
  if (parsed.command == "stat") return cmd_stat(parsed);
  if (parsed.command == "upload") return cmd_upload(parsed);
  if (parsed.command == "download") return cmd_download(parsed);
  if (parsed.command == "clone") return cmd_clone(parsed);
  if (parsed.command == "patch") return cmd_patch(parsed);
  if (parsed.command == "critpath") return cmd_critpath(parsed);
  if (parsed.command == "engine-stats") return cmd_engine_stats(parsed);
  if (parsed.command == "timeline") return cmd_timeline(parsed);
  return invalid_argument("unknown command '" + parsed.command + "'\n" +
                          repo_cli_usage());
}

}  // namespace vmstorm::apps
