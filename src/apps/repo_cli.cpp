#include "apps/repo_cli.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <fstream>
#include <sstream>

#include "blob/persist.hpp"
#include "blob/store.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"

namespace vmstorm::apps {

namespace {

constexpr Bytes kDefaultChunk = 256_KiB;

Result<std::vector<std::byte>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot open " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

Status write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return unavailable("cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out ? Status::ok() : unavailable("write failed");
}

Result<std::uint64_t> parse_u64(const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument("not a number: " + text);
  }
  return static_cast<std::uint64_t>(v);
}

struct Parsed {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --name value / --name
};

Result<Parsed> parse_args(const std::vector<std::string>& args) {
  if (args.empty()) return invalid_argument("no command; try: " + repo_cli_usage());
  Parsed p;
  p.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      const std::string name = args[i].substr(2);
      if (name == "dedup") {
        p.flags[name] = "1";
      } else {
        if (i + 1 >= args.size()) {
          return invalid_argument("flag --" + name + " needs a value");
        }
        p.flags[name] = args[++i];
      }
    } else {
      p.positional.push_back(args[i]);
    }
  }
  return p;
}

Result<std::unique_ptr<blob::BlobStore>> open_repo(const std::string& path) {
  return blob::load_store_file(path);
}

Result<std::string> cmd_init(const Parsed& p) {
  if (p.positional.size() != 1) return invalid_argument("init <repo>");
  blob::StoreConfig cfg;
  cfg.providers = 8;
  if (auto it = p.flags.find("providers"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(n, parse_u64(it->second));
    if (n == 0) return invalid_argument("--providers must be > 0");
    cfg.providers = n;
  }
  if (auto it = p.flags.find("replication"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(r, parse_u64(it->second));
    cfg.replication = r;
  }
  cfg.dedup = p.flags.count("dedup") > 0;
  blob::BlobStore store(cfg);
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(store, p.positional[0]));
  std::ostringstream os;
  os << "initialized repository " << p.positional[0] << " (" << cfg.providers
     << " providers, replication " << cfg.replication
     << (cfg.dedup ? ", dedup on" : "") << ")\n";
  return os.str();
}

Result<std::string> cmd_ls(const Parsed& p) {
  if (p.positional.size() != 1) return invalid_argument("ls <repo>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  Table t({"blob", "size", "chunk", "latest", "versions"});
  // Blob ids are dense from 1; probe until the directory runs out.
  std::size_t seen = 0;
  for (blob::BlobId id = 1; seen < store->blob_count() && id < 1u << 20; ++id) {
    auto info = store->info(id);
    if (!info.is_ok()) continue;
    ++seen;
    t.add_row({std::to_string(id),
               format_bytes(static_cast<double>(info->size)),
               format_bytes(static_cast<double>(info->chunk_size)),
               std::to_string(info->latest),
               std::to_string(info->latest + 1)});
  }
  std::ostringstream os;
  os << t.to_string() << store->blob_count() << " blob(s), "
     << format_bytes(static_cast<double>(store->stored_bytes()))
     << " stored\n";
  return os.str();
}

Result<std::string> cmd_stat(const Parsed& p) {
  if (p.positional.size() != 2) return invalid_argument("stat <repo> <blob>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  std::ostringstream os;
  os << "blob " << id << ": size "
     << format_bytes(static_cast<double>(info.size)) << ", "
     << info.chunk_count << " chunks of "
     << format_bytes(static_cast<double>(info.chunk_size)) << ", versions 0.."
     << info.latest << "\n";
  return os.str();
}

Result<std::string> cmd_upload(const Parsed& p) {
  if (p.positional.size() != 2) return invalid_argument("upload <repo> <file>");
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(data, read_file(p.positional[1]));
  if (data.empty()) return invalid_argument("refusing to upload an empty file");
  Bytes chunk = kDefaultChunk;
  if (auto it = p.flags.find("chunk"); it != p.flags.end()) {
    VMSTORM_ASSIGN_OR_RETURN(c, parse_size(it->second));
    chunk = c;
  }
  VMSTORM_ASSIGN_OR_RETURN(id, store->create(data.size(), chunk));
  VMSTORM_ASSIGN_OR_RETURN(v, store->write(id, 0, 0, data));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "uploaded " << p.positional[1] << " as blob " << id << " version " << v
     << " (" << format_bytes(static_cast<double>(data.size())) << ")\n";
  return os.str();
}

Result<std::string> cmd_download(const Parsed& p) {
  if (p.positional.size() != 4) {
    return invalid_argument("download <repo> <blob> <version> <file>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(version, parse_u64(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  std::vector<std::byte> data(info.size);
  VMSTORM_RETURN_IF_ERROR(store->read(static_cast<blob::BlobId>(id),
                                      static_cast<blob::Version>(version), 0,
                                      data));
  VMSTORM_RETURN_IF_ERROR(write_file(p.positional[3], data));
  std::ostringstream os;
  os << "downloaded blob " << id << " v" << version << " to " << p.positional[3]
     << " (" << format_bytes(static_cast<double>(data.size())) << ")\n";
  return os.str();
}

Result<std::string> cmd_clone(const Parsed& p) {
  if (p.positional.size() != 3) {
    return invalid_argument("clone <repo> <blob> <version>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(version, parse_u64(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(
      clone, store->clone(static_cast<blob::BlobId>(id),
                          static_cast<blob::Version>(version)));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "cloned blob " << id << " v" << version << " as blob " << clone
     << " (zero data copied)\n";
  return os.str();
}

Result<std::string> cmd_patch(const Parsed& p) {
  if (p.positional.size() != 4) {
    return invalid_argument("patch <repo> <blob> <offset> <file>");
  }
  VMSTORM_ASSIGN_OR_RETURN(store, open_repo(p.positional[0]));
  VMSTORM_ASSIGN_OR_RETURN(id, parse_u64(p.positional[1]));
  VMSTORM_ASSIGN_OR_RETURN(offset, parse_size(p.positional[2]));
  VMSTORM_ASSIGN_OR_RETURN(data, read_file(p.positional[3]));
  VMSTORM_ASSIGN_OR_RETURN(info, store->info(static_cast<blob::BlobId>(id)));
  VMSTORM_ASSIGN_OR_RETURN(
      v, store->write(static_cast<blob::BlobId>(id), info.latest, offset, data));
  VMSTORM_RETURN_IF_ERROR(blob::save_store_file(*store, p.positional[0]));
  std::ostringstream os;
  os << "patched blob " << id << " at offset " << offset << ": new version "
     << v << "\n";
  return os.str();
}

Result<std::string> cmd_critpath(const Parsed& p) {
  if (p.positional.size() != 1) {
    return invalid_argument("critpath <trace.jsonl>");
  }
  std::ifstream in(p.positional[0], std::ios::binary);
  if (!in) return not_found("cannot open " + p.positional[0]);
  std::ostringstream text;
  text << in.rdbuf();
  VMSTORM_ASSIGN_OR_RETURN(events, obs::parse_trace_jsonl(text.str()));
  const obs::CritReport report = obs::analyze_critical_paths(events);
  return obs::attribution_table(report);
}

Result<std::string> cmd_engine_stats(const Parsed& p) {
  if (p.positional.size() != 1) {
    return invalid_argument("engine-stats <BENCH_engine.json>");
  }
  std::ifstream in(p.positional[0], std::ios::binary);
  if (!in) return not_found("cannot open " + p.positional[0]);
  std::ostringstream text;
  text << in.rdbuf();
  VMSTORM_ASSIGN_OR_RETURN(doc, obs::parse_json(text.str()));
  if (doc["schema"].as_string() != "vmstorm-engine-v1") {
    return invalid_argument("not a vmstorm-engine-v1 artifact (schema: \"" +
                            doc["schema"].as_string() + "\")");
  }

  std::ostringstream os;
  os << doc["title"].as_string() << " ("
     << (doc["quick"].as_bool() ? "quick" : "full") << " mode, config "
     << doc["config"]["fingerprint"].as_string() << ")\n\n";

  // Deterministic engine counters — same for every arm by construction.
  const obs::JsonValue& sim = doc["sim"];
  Table counters({"engine counter", "value"});
  for (const auto& [key, v] : sim.members()) {
    if (!v.is_number()) continue;  // nested trace section rendered below
    counters.add_row({key, Table::num(v.as_number(), 0)});
  }
  const obs::JsonValue& trace = sim["trace"];
  for (const auto& [key, v] : trace.members()) {
    counters.add_row({"trace." + key, Table::num(v.as_number(), 0)});
  }
  os << counters.to_string() << "\n";

  // Tracing ablation: host-time costs per arm, overhead vs tracing off.
  const obs::JsonValue& arms = doc["overhead"]["arms"];
  double off_wall = 0;
  for (const obs::JsonValue& arm : arms.items()) {
    if (arm["name"].as_string() == "off") off_wall = arm["wall_seconds"].as_number();
  }
  Table ablation({"arm", "wall s", "events/s", "overhead", "tracer s",
                  "dispatch s", "peak rss", "events recorded"});
  for (const obs::JsonValue& arm : arms.items()) {
    const double wall = arm["wall_seconds"].as_number();
    const std::string overhead =
        arm["name"].as_string() == "off" || off_wall <= 0
            ? "-"
            : Table::num((wall - off_wall) / off_wall * 100.0, 1) + "%";
    ablation.add_row(
        {arm["name"].as_string(), Table::num(wall, 3),
         Table::num(arm["events_per_sec"].as_number(), 0), overhead,
         Table::num(arm["phases"]["tracer"].as_number(), 3),
         Table::num(arm["phases"]["dispatch"].as_number(), 3),
         format_bytes(arm["peak_rss_bytes"].as_number()),
         Table::num(arm["trace"]["recorded"].as_number(), 0)});
  }
  os << ablation.to_string();
  return os.str();
}

}  // namespace

Result<Bytes> parse_size(const std::string& text) {
  if (text.empty()) return invalid_argument("empty size");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return invalid_argument("not a size: " + text);
  Bytes mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'K': case 'k': mult = kKiB; break;
      case 'M': case 'm': mult = kMiB; break;
      case 'G': case 'g': mult = kGiB; break;
      default: return invalid_argument("bad size suffix in: " + text);
    }
    if (*(end + 1) != '\0') return invalid_argument("bad size: " + text);
  }
  return static_cast<Bytes>(v) * mult;
}

std::string repo_cli_usage() {
  return "vmstormctl <command>\n"
         "  init <repo> [--providers N] [--replication R] [--dedup]\n"
         "  ls <repo>\n"
         "  stat <repo> <blob>\n"
         "  upload <repo> <file> [--chunk SIZE]\n"
         "  download <repo> <blob> <version> <file>\n"
         "  clone <repo> <blob> <version>\n"
         "  patch <repo> <blob> <offset> <file>\n"
         "  critpath <trace.jsonl>\n"
         "  engine-stats <BENCH_engine.json>\n";
}

Result<std::string> run_repo_cli(const std::vector<std::string>& args) {
  VMSTORM_ASSIGN_OR_RETURN(parsed, parse_args(args));
  if (parsed.command == "init") return cmd_init(parsed);
  if (parsed.command == "ls") return cmd_ls(parsed);
  if (parsed.command == "stat") return cmd_stat(parsed);
  if (parsed.command == "upload") return cmd_upload(parsed);
  if (parsed.command == "download") return cmd_download(parsed);
  if (parsed.command == "clone") return cmd_clone(parsed);
  if (parsed.command == "patch") return cmd_patch(parsed);
  if (parsed.command == "critpath") return cmd_critpath(parsed);
  if (parsed.command == "engine-stats") return cmd_engine_stats(parsed);
  return invalid_argument("unknown command '" + parsed.command + "'\n" +
                          repo_cli_usage());
}

}  // namespace vmstorm::apps
