// Bonnie++-style filesystem benchmark (§5.4) over imgfs.
//
// Reproduces the phases the paper reports: sequential block write, block
// read, block overwrite (Fig. 6 throughput), then random seeks and file
// create/delete rates (Fig. 7 ops/s). Runs with REAL I/O and wall-clock
// timing against any imgfs-backed device — the mirroring module's
// VirtualDisk or a plain local file — which is exactly the comparison of
// §5.4.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "imgfs/filesystem.hpp"

namespace vmstorm::apps {

struct BonnieConfig {
  /// Total data written/read/overwritten per phase (paper: 800 MB out of a
  /// 2 GB image).
  Bytes total = 256_MiB;
  /// I/O block size (paper: 8 KiB).
  Bytes block = 8_KiB;
  /// Data is spread over files of this size.
  Bytes file_size = 64_MiB;
  std::uint32_t seek_ops = 2000;
  std::uint32_t file_ops = 1000;
  std::uint64_t seed = 2011;
};

struct BonnieResult {
  double block_write_kbps = 0;
  double block_read_kbps = 0;
  double block_overwrite_kbps = 0;
  double random_seeks_per_s = 0;
  double creates_per_s = 0;
  double deletes_per_s = 0;
};

/// Runs all phases on a freshly-formatted `fs`. Returns throughput/ops
/// measured with the host's monotonic clock.
Result<BonnieResult> run_bonnie(imgfs::FileSystem& fs, const BonnieConfig& cfg);

}  // namespace vmstorm::apps
