// Monte-Carlo π estimation (§5.5's real-life application).
//
// Two forms:
//  * estimate_pi — the actual computation, used by the example programs
//    (each worker samples points, counts hits in the inscribed circle);
//  * run_montecarlo_experiment — the §5.5 experiment on the simulated
//    cloud: N workers, evenly-split work, ~10 MB of intermediate state
//    written in-image, in uninterrupted or suspend/resume settings.
#pragma once

#include <cstdint>

#include "cloud/cloud.hpp"
#include "common/status.hpp"

namespace vmstorm::apps {

/// Samples `samples` points; returns the π estimate.
double estimate_pi(std::uint64_t samples, std::uint64_t seed);

/// Merges per-worker (hits, samples) tallies into a π estimate.
struct PiTally {
  std::uint64_t hits = 0;
  std::uint64_t samples = 0;
  void add(const PiTally& o) {
    hits += o.hits;
    samples += o.samples;
  }
  double estimate() const {
    return samples == 0 ? 0.0 : 4.0 * static_cast<double>(hits) /
                                    static_cast<double>(samples);
  }
};
PiTally sample_pi(std::uint64_t samples, std::uint64_t seed);

struct MonteCarloParams {
  std::size_t workers = 100;
  /// Wall compute time per worker (the paper's run computes ~1000 s).
  double compute_seconds = 1000.0;
  /// Intermediate results written inside each VM image (~10 MB).
  Bytes state_bytes = 10 * 1000 * 1000;
  /// Checkpoint steps (writes spread across the computation).
  std::size_t steps = 10;
  vm::BootTraceParams boot;
};

struct MonteCarloOutcome {
  double completion_seconds = 0;  // Fig. 8 bar height
  double deploy_seconds = 0;
  double snapshot_seconds = 0;    // suspend/resume only
  double resume_seconds = 0;      // suspend/resume only
};

/// Uninterrupted setting: multideploy + full computation.
MonteCarloOutcome run_montecarlo_uninterrupted(cloud::Strategy strategy,
                                               cloud::CloudConfig cfg,
                                               const MonteCarloParams& params);

/// Suspend/resume setting: deploy, compute half, snapshot & terminate,
/// redeploy on fresh nodes, compute the rest. Not available for
/// prepropagation (returns error), as in the paper.
Result<MonteCarloOutcome> run_montecarlo_suspend_resume(
    cloud::Strategy strategy, cloud::CloudConfig cfg,
    const MonteCarloParams& params);

}  // namespace vmstorm::apps
