#include "apps/montecarlo.hpp"

#include "common/rng.hpp"

namespace vmstorm::apps {

PiTally sample_pi(std::uint64_t samples, std::uint64_t seed) {
  Rng rng(seed);
  PiTally t;
  t.samples = samples;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double x = rng.uniform_double();
    const double y = rng.uniform_double();
    if (x * x + y * y <= 1.0) ++t.hits;
  }
  return t;
}

double estimate_pi(std::uint64_t samples, std::uint64_t seed) {
  return sample_pi(samples, seed).estimate();
}

MonteCarloOutcome run_montecarlo_uninterrupted(cloud::Strategy strategy,
                                               cloud::CloudConfig cfg,
                                               const MonteCarloParams& params) {
  cfg.compute_nodes = params.workers;
  cloud::Cloud cloud(cfg, strategy);
  MonteCarloOutcome out;
  const double t0 = cloud.engine().now_seconds();
  auto dep = cloud.multideploy(params.workers, params.boot);
  out.deploy_seconds = dep.completion_seconds;
  cloud.run_app_phase(params.compute_seconds, params.state_bytes, params.steps);
  out.completion_seconds = cloud.engine().now_seconds() - t0;
  return out;
}

Result<MonteCarloOutcome> run_montecarlo_suspend_resume(
    cloud::Strategy strategy, cloud::CloudConfig cfg,
    const MonteCarloParams& params) {
  if (strategy == cloud::Strategy::kPrepropagation) {
    return failed_precondition("prepropagation cannot snapshot/resume");
  }
  cfg.compute_nodes = params.workers;
  cloud::Cloud cloud(cfg, strategy);
  MonteCarloOutcome out;
  const double t0 = cloud.engine().now_seconds();

  auto dep = cloud.multideploy(params.workers, params.boot);
  out.deploy_seconds = dep.completion_seconds;
  cloud.run_app_phase(params.compute_seconds / 2, params.state_bytes / 2,
                      params.steps / 2 + 1);

  VMSTORM_ASSIGN_OR_RETURN(snap, cloud.multisnapshot());
  out.snapshot_seconds = snap.completion_seconds;

  VMSTORM_ASSIGN_OR_RETURN(resume, cloud.resume_boot(params.boot));
  out.resume_seconds = resume.completion_seconds;

  // Each resumed worker re-reads its intermediate state from the image
  // (remote on the fresh node), then finishes the remaining half.
  cloud.run_app_phase(params.compute_seconds / 2, params.state_bytes / 2,
                      params.steps / 2 + 1);
  out.completion_seconds = cloud.engine().now_seconds() - t0;
  return out;
}

}  // namespace vmstorm::apps
