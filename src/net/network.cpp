#include "net/network.hpp"

namespace vmstorm::net {

Network::Network(sim::Engine& engine, std::size_t node_count, NetworkConfig cfg)
    : engine_(&engine), cfg_(cfg) {
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) add_node();
}

NodeId Network::add_node() {
  nodes_.push_back(std::make_unique<NetNode>(*engine_, cfg_));
  return static_cast<NodeId>(nodes_.size() - 1);
}

sim::Task<void> Network::transfer(NodeId src, NodeId dst, Bytes payload) {
  if (src == dst) co_return;  // local: no wire traffic, no NIC time
  const Bytes wire = payload + cfg_.per_message_overhead;
  total_traffic_ += wire;
  total_payload_ += payload;
  ++total_messages_;

  NetNode& s = node(src);
  NetNode& d = node(dst);
  s.bytes_sent_ += wire;
  d.bytes_received_ += wire;

  if (cfg_.connection_setup > 0 && connections_.emplace(src, dst).second) {
    co_await engine_->sleep(cfg_.connection_setup);
  }
  co_await s.tx_.serve_with_overhead(wire, cfg_.per_message_cpu);
  co_await engine_->sleep(cfg_.latency);
  co_await d.rx_.serve_with_overhead(wire, cfg_.per_message_cpu);
}

sim::Task<void> Network::round_trip(NodeId client, NodeId server,
                                    Bytes request_bytes, Bytes response_bytes,
                                    sim::Task<void> server_work) {
  co_await transfer(client, server, request_bytes);
  co_await std::move(server_work);
  co_await transfer(server, client, response_bytes);
}

namespace {
sim::Task<void> noop() { co_return; }
}  // namespace

sim::Task<void> Network::small_rpc(NodeId client, NodeId server,
                                   Bytes request_bytes, Bytes response_bytes) {
  co_await round_trip(client, server, request_bytes, response_bytes, noop());
}

}  // namespace vmstorm::net
