#include "net/network.hpp"

#include "obs/recorder.hpp"
#include "sim/causal.hpp"

namespace vmstorm::net {

Network::Network(sim::Engine& engine, std::size_t node_count, NetworkConfig cfg)
    : engine_(&engine), cfg_(cfg) {
  if (obs::Recorder* rec = engine.recorder()) {
    obs_transfers_ = &rec->metrics.counter("net.transfers");
    obs_queue_wait_ = &rec->metrics.histogram("net.queue_wait_seconds");
    obs_transfer_time_ = &rec->metrics.histogram("net.transfer_seconds");
    tracer_ = &rec->trace;
  }
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) add_node();
}

NodeId Network::add_node() {
  nodes_.push_back(std::make_unique<NetNode>(*engine_, cfg_));
  const NodeId id = static_cast<NodeId>(nodes_.size() - 1);
  nodes_.back()->tx_.set_trace("net.tx", id);
  nodes_.back()->rx_.set_trace("net.rx", id);
  return id;
}

sim::Task<void> Network::transfer(NodeId src, NodeId dst, Bytes payload) {
  if (src == dst) co_return;  // local: no wire traffic, no NIC time
  const Bytes wire = payload + cfg_.per_message_overhead;
  total_traffic_ += wire;
  total_payload_ += payload;
  ++total_messages_;
  if (obs_transfers_) obs_transfers_->add();

  NetNode& s = node(src);
  NetNode& d = node(dst);
  s.bytes_sent_ += wire;
  d.bytes_received_ += wire;

  const double start = engine_->now_seconds();
  // Splitting latency into queue wait vs service: the TX backlog at arrival
  // is the queueing component; everything past it is transfer + propagation.
  if (obs_queue_wait_) {
    obs_queue_wait_->record(sim::to_seconds(s.tx_.backlog()));
  }

  // Each transfer is a span: the NIC wait/svc events it generates parent
  // under it, and the propagation/handshake sleeps (invisible to any
  // FifoServer) are recorded as explicit cost events.
  obs::Tracer* tr = tracer_ != nullptr && tracer_->enabled() ? tracer_ : nullptr;
  const std::uint64_t parent = engine_->current_span();
  std::uint64_t span = 0;
  if (tr) {
    span = tr->new_span(parent);
    engine_->set_current_span(span);
  }

  if (cfg_.connection_setup > 0 && connections_.emplace(src, dst).second) {
    const double conn_start = engine_->now_seconds();
    co_await engine_->sleep(cfg_.connection_setup);
    if (tr) {
      tr->complete_in(conn_start, engine_->now_seconds() - conn_start, src,
                      "svc", "net.conn", span);
    }
  }
  co_await s.tx_.serve_with_overhead(wire, cfg_.per_message_cpu);
  const double lat_start = engine_->now_seconds();
  co_await engine_->sleep(cfg_.latency);
  if (tr) {
    tr->complete_in(lat_start, engine_->now_seconds() - lat_start, src, "svc",
                    "net.latency", span);
  }
  co_await d.rx_.serve_with_overhead(wire, cfg_.per_message_cpu);

  const double elapsed = engine_->now_seconds() - start;
  if (obs_transfer_time_) obs_transfer_time_->record(elapsed);
  if (tr) {
    tr->complete_span(start, elapsed, src, "net", "transfer", span, parent,
                      {obs::TraceArg::uint("dst", dst),
                       obs::TraceArg::uint("bytes", payload)});
    engine_->set_current_span(parent);
  }
}

sim::Task<void> Network::round_trip(NodeId client, NodeId server,
                                    Bytes request_bytes, Bytes response_bytes,
                                    sim::Task<void> server_work) {
  co_await transfer(client, server, request_bytes);
  co_await std::move(server_work);
  co_await transfer(server, client, response_bytes);
}

namespace {
sim::Task<void> noop() { co_return; }
}  // namespace

sim::Task<void> Network::small_rpc(NodeId client, NodeId server,
                                   Bytes request_bytes, Bytes response_bytes) {
  // Metadata-sized RPC: everything underneath (transfers, NIC queueing)
  // buckets as metadata time in the critical-path attribution.
  obs::Tracer* tr = tracer_ != nullptr && tracer_->enabled() ? tracer_ : nullptr;
  const std::uint64_t parent = engine_->current_span();
  std::uint64_t span = 0;
  const double start = engine_->now_seconds();
  if (tr) {
    span = tr->new_span(parent);
    engine_->set_current_span(span);
  }
  co_await round_trip(client, server, request_bytes, response_bytes, noop());
  if (tr) {
    tr->complete_span(start, engine_->now_seconds() - start, client, "net",
                      "rpc", span, parent,
                      {obs::TraceArg::str("bucket", "metadata")});
    engine_->set_current_span(parent);
  }
}

}  // namespace vmstorm::net
