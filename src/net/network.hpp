// Cluster network model.
//
// Mirrors the paper's testbed (§5.1): commodity nodes on switched Gigabit
// Ethernet — full-duplex NICs, a non-blocking core switch (so only the
// endpoints' NICs contend), ~0.1 ms one-way latency, and a fixed per-message
// protocol overhead. Transfers are store-and-forward at message granularity;
// callers move data in chunk-sized messages, which is the same granularity
// at which the real system's transfers queue.
//
// The model also keeps the traffic accounting (per node and global) that
// Figure 4(d) plots.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace vmstorm::obs {
class Counter;
class ExpHistogram;
class Tracer;
}  // namespace vmstorm::obs

namespace vmstorm::net {

using NodeId = std::uint32_t;

struct NetworkConfig {
  /// Paper: measured 117.5 MB/s for TCP over GigE with MTU 1500.
  BytesPerSecond link_rate = mb_per_s(117.5);
  /// One-way latency (paper: ~0.1 ms).
  sim::SimTime latency = sim::from_micros(100);
  /// Protocol bytes added per message (headers, framing). At MTU 1500 with
  /// ~66 B of TCP/IP/Ethernet headers per packet this is ~4.6 % of payload;
  /// we fold it into a fixed per-message charge plus a small rate tax.
  Bytes per_message_overhead = 512;
  /// Fixed per-request software overhead at each endpoint (syscalls, RPC
  /// dispatch). Small reads are dominated by this + latency.
  sim::SimTime per_message_cpu = sim::from_micros(60);
  /// First message between a (src, dst) pair pays this connection handshake
  /// cost (TCP three-way ≈ 1 RTT, plus socket setup — fold the RTT in
  /// here). Captures the paper's §5.3 observation that snapshotting
  /// completion degrades as "more network connections need to be opened in
  /// parallel on each compute node". Set to 0 to disable.
  sim::SimTime connection_setup = sim::from_micros(500);
};

/// One endpoint: full-duplex NIC = independent TX and RX queues.
class NetNode {
 public:
  NetNode(sim::Engine& engine, const NetworkConfig& cfg)
      : tx_(engine, cfg.link_rate), rx_(engine, cfg.link_rate) {}

  sim::FifoServer& tx() { return tx_; }
  sim::FifoServer& rx() { return rx_; }

  Bytes bytes_sent() const { return bytes_sent_; }
  Bytes bytes_received() const { return bytes_received_; }

 private:
  friend class Network;
  sim::FifoServer tx_;
  sim::FifoServer rx_;
  Bytes bytes_sent_ = 0;
  Bytes bytes_received_ = 0;
};

class Network {
 public:
  Network(sim::Engine& engine, std::size_t node_count,
          NetworkConfig cfg = NetworkConfig{});

  sim::Engine& engine() { return *engine_; }
  const NetworkConfig& config() const { return cfg_; }
  std::size_t node_count() const { return nodes_.size(); }
  NetNode& node(NodeId id) { return *nodes_.at(id); }

  /// Adds a node (e.g. a dedicated NFS server) and returns its id.
  NodeId add_node();

  /// Moves `payload` bytes from src to dst: queue at src TX, propagate,
  /// queue at dst RX. Self-transfers are free (local memory).
  sim::Task<void> transfer(NodeId src, NodeId dst, Bytes payload);

  /// Request/response round trip with server-side work in between:
  /// request message -> (server work, the awaited `server_work`) -> response.
  /// Typical use: req = header-only, server work = disk read, resp = data.
  sim::Task<void> round_trip(NodeId client, NodeId server, Bytes request_bytes,
                             Bytes response_bytes,
                             sim::Task<void> server_work);

  /// Convenience for metadata-sized RPCs (request+response both tiny).
  sim::Task<void> small_rpc(NodeId client, NodeId server,
                            Bytes request_bytes = 256,
                            Bytes response_bytes = 256);

  /// Total bytes put on the wire (payload + protocol overhead), the
  /// quantity Figure 4(d) reports.
  Bytes total_traffic() const { return total_traffic_; }

  /// Payload-only traffic (excludes protocol overhead).
  Bytes total_payload() const { return total_payload_; }

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t connections_opened() const { return connections_.size(); }

  /// Forgets established connections (e.g. between benchmark repetitions).
  void reset_connections() { connections_.clear(); }

 private:
  sim::Engine* engine_;
  NetworkConfig cfg_;
  std::vector<std::unique_ptr<NetNode>> nodes_;
  std::set<std::pair<NodeId, NodeId>> connections_;
  Bytes total_traffic_ = 0;
  Bytes total_payload_ = 0;
  std::uint64_t total_messages_ = 0;
  // Metric handles cached from the engine's Recorder at construction; all
  // null when no recorder is attached (plain unit tests).
  obs::Counter* obs_transfers_ = nullptr;
  obs::ExpHistogram* obs_queue_wait_ = nullptr;
  obs::ExpHistogram* obs_transfer_time_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace vmstorm::net
