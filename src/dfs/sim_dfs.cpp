#include "dfs/sim_dfs.hpp"

#include <cassert>
#include <stdexcept>

#include "common/rng.hpp"
#include "sim/causal.hpp"

namespace vmstorm::dfs {

SimDfs::SimDfs(sim::Engine& engine, net::Network& network, StripedFs& fs,
               std::vector<net::NodeId> server_nodes,
               std::vector<storage::Disk*> server_disks, SimDfsConfig cfg)
    : engine_(&engine), network_(&network), fs_(&fs),
      server_nodes_(std::move(server_nodes)),
      server_disks_(std::move(server_disks)), cfg_(cfg) {
  assert(server_nodes_.size() == server_disks_.size());
  assert(server_nodes_.size() == fs.server_count());
  for (std::size_t i = 0; i < server_nodes_.size(); ++i) {
    server_cpus_.push_back(std::make_unique<sim::FifoServer>(
        engine, /*rate=*/1e18, cfg_.server_request_cpu));
    server_cpus_.back()->set_trace("dfs.cpu", server_nodes_[i]);
  }
}

std::uint64_t SimDfs::stripe_cache_key(FileId file,
                                       std::uint64_t stripe_index) const {
  return mix64((static_cast<std::uint64_t>(file) << 40) ^ stripe_index);
}

sim::Task<void> SimDfs::read_piece(net::NodeId client, FileId file,
                                   StripePiece piece) {
  // Repository-hinted span: DFS server disk/CPU time under it buckets as
  // repo_disk, the wire time as net_transfer.
  obs::Tracer* tr = sim::live_tracer(*engine_);
  const std::uint64_t parent = engine_->current_span();
  std::uint64_t span = 0;
  if (tr) {
    span = tr->new_span(parent);
    engine_->set_current_span(span);
  }
  const double start = engine_->now_seconds();
  auto server_work = [](SimDfs* self, FileId f, StripePiece p) -> sim::Task<void> {
    co_await self->server_cpus_.at(p.server)->serve(0);
    co_await self->server_disks_.at(p.server)->read(
        self->stripe_cache_key(f, p.stripe_index), p.length);
  }(this, file, piece);
  co_await network_->round_trip(client, server_nodes_.at(piece.server),
                                cfg_.request_bytes, piece.length,
                                std::move(server_work));
  if (tr) {
    tr->complete_span(start, engine_->now_seconds() - start, client, "dfs",
                      "read", span, parent,
                      {obs::TraceArg::str("bucket", "repo"),
                       obs::TraceArg::uint("bytes", piece.length)});
    engine_->set_current_span(parent);
  }
}

sim::Task<void> SimDfs::write_piece(net::NodeId client, FileId file,
                                    StripePiece piece) {
  obs::Tracer* tr = sim::live_tracer(*engine_);
  const std::uint64_t parent = engine_->current_span();
  std::uint64_t span = 0;
  if (tr) {
    span = tr->new_span(parent);
    engine_->set_current_span(span);
  }
  const double start = engine_->now_seconds();
  auto server_work = [](SimDfs* self, FileId /*file*/, StripePiece p) -> sim::Task<void> {
    co_await self->server_cpus_.at(p.server)->serve(0);
    // PVFS acks a write once it is on the platter (no server-side write
    // cache) — the §5.3 contrast with BlobSeer's asynchronous-write ACK.
    co_await self->server_disks_.at(p.server)->write_sync(p.length);
  }(this, file, piece);
  co_await network_->round_trip(client, server_nodes_.at(piece.server),
                                cfg_.request_bytes + piece.length,
                                /*response_bytes=*/64, std::move(server_work));
  if (tr) {
    tr->complete_span(start, engine_->now_seconds() - start, client, "dfs",
                      "write", span, parent,
                      {obs::TraceArg::str("bucket", "repo"),
                       obs::TraceArg::uint("bytes", piece.length)});
    engine_->set_current_span(parent);
  }
}

sim::Task<void> SimDfs::read(net::NodeId client, FileId file, Bytes offset,
                             Bytes length) {
  if (length == 0) co_return;
  auto pieces = fs_->layout(file, offset, length);
  if (!pieces.is_ok()) {
    throw std::runtime_error("SimDfs::read: " + pieces.status().to_string());
  }
  std::vector<sim::Task<void>> tasks;
  tasks.reserve(pieces->size());
  for (const StripePiece& p : *pieces) {
    tasks.push_back(read_piece(client, file, p));
  }
  co_await sim::when_all(*engine_, std::move(tasks));
}

sim::Task<void> SimDfs::write(net::NodeId client, FileId file, Bytes offset,
                              Bytes length) {
  if (length == 0) co_return;
  auto pieces = fs_->layout(file, offset, length);
  if (!pieces.is_ok()) {
    throw std::runtime_error("SimDfs::write: " + pieces.status().to_string());
  }
  std::vector<sim::Task<void>> tasks;
  tasks.reserve(pieces->size());
  for (const StripePiece& p : *pieces) {
    tasks.push_back(write_piece(client, file, p));
  }
  co_await sim::when_all(*engine_, std::move(tasks));
}

}  // namespace vmstorm::dfs
