// PVFS-style striped distributed file system (the qcow2 baseline's backing
// store, §5.2 "qcow2 over PVFS").
//
// Files are striped round-robin at a fixed stripe size over N data servers
// (PVFS's default simple_stripe distribution); metadata (name, size,
// stripe map) is implicit from the deterministic layout, mirroring PVFS's
// avoidance of a central metadata bottleneck. Like BlobStore, this class is
// the real logical store; dfs::SimDfs charges simulated time around it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "blob/chunk.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace vmstorm::dfs {

using FileId = std::uint32_t;
using ServerId = std::uint32_t;

struct StripePiece {
  std::uint64_t stripe_index = 0;
  ServerId server = 0;
  Bytes offset_in_file = 0;  // where this piece starts in the file
  Bytes offset_in_stripe = 0;
  Bytes length = 0;
};

struct FileInfo {
  std::string name;
  Bytes size = 0;
  Bytes stripe_size = 0;
};

class StripedFs {
 public:
  StripedFs(std::size_t server_count, Bytes default_stripe_size = 256_KiB);

  Result<FileId> create(const std::string& name);
  Result<FileId> open(const std::string& name) const;
  Status remove(const std::string& name);
  Result<FileInfo> stat(FileId file) const;
  std::size_t file_count() const;
  std::size_t server_count() const { return server_count_; }

  /// Writes (extends the file if needed).
  Status write(FileId file, Bytes offset, std::span<const std::byte> data);

  /// Synthetic-content write (see blob::ChunkPayload::pattern).
  Status write_pattern(FileId file, Bytes offset, Bytes length,
                       std::uint64_t seed);

  /// Reads; short reads past EOF are an error, holes read as zeros.
  Status read(FileId file, Bytes offset, std::span<std::byte> out) const;

  /// The stripe pieces covering [offset, offset+length), in order — the
  /// layout query SimDfs uses to charge per-server costs.
  Result<std::vector<StripePiece>> layout(FileId file, Bytes offset,
                                          Bytes length) const;

  /// Logical bytes stored on one server / total.
  Bytes stored_bytes_on(ServerId s) const;
  Bytes stored_bytes() const;

 private:
  struct FileRecord {
    FileInfo info;
    // stripe index -> payload (stripe-sized except possibly the last).
    std::map<std::uint64_t, blob::ChunkPayload> stripes;
  };

  ServerId server_of(std::uint64_t stripe_index) const {
    return static_cast<ServerId>(stripe_index % server_count_);
  }

  std::size_t server_count_;
  Bytes default_stripe_size_;
  mutable std::mutex mutex_;
  std::map<FileId, FileRecord> files_;
  std::map<std::string, FileId> by_name_;
  FileId next_file_ = 1;
};

}  // namespace vmstorm::dfs
