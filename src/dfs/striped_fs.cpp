#include "dfs/striped_fs.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace vmstorm::dfs {

StripedFs::StripedFs(std::size_t server_count, Bytes default_stripe_size)
    : server_count_(server_count == 0 ? 1 : server_count),
      default_stripe_size_(default_stripe_size) {
  assert(default_stripe_size_ > 0);
}

Result<FileId> StripedFs::create(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.count(name) > 0) return already_exists(name);
  FileRecord rec;
  rec.info.name = name;
  rec.info.stripe_size = default_stripe_size_;
  const FileId id = next_file_++;
  files_.emplace(id, std::move(rec));
  by_name_[name] = id;
  return id;
}

Result<FileId> StripedFs::open(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return not_found(name);
  return it->second;
}

Status StripedFs::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return not_found(name);
  files_.erase(it->second);
  by_name_.erase(it);
  return Status::ok();
}

Result<FileInfo> StripedFs::stat(FileId file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) return not_found("file " + std::to_string(file));
  return it->second.info;
}

std::size_t StripedFs::file_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

Status StripedFs::write(FileId file, Bytes offset,
                        std::span<const std::byte> data) {
  if (data.empty()) return Status::ok();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) return not_found("file " + std::to_string(file));
  FileRecord& rec = it->second;
  const Bytes stripe = rec.info.stripe_size;
  const Bytes end = offset + data.size();
  for (std::uint64_t si = offset / stripe; si * stripe < end; ++si) {
    const Bytes base = si * stripe;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + stripe);
    auto [sit, inserted] = rec.stripes.try_emplace(si, blob::ChunkPayload::zeros(0));
    sit->second.write(lo - base, data.subspan(lo - offset, hi - lo));
  }
  rec.info.size = std::max(rec.info.size, end);
  return Status::ok();
}

Status StripedFs::write_pattern(FileId file, Bytes offset, Bytes length,
                                std::uint64_t seed) {
  if (length == 0) return Status::ok();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) return not_found("file " + std::to_string(file));
  FileRecord& rec = it->second;
  const Bytes stripe = rec.info.stripe_size;
  const Bytes end = offset + length;
  for (std::uint64_t si = offset / stripe; si * stripe < end; ++si) {
    const Bytes base = si * stripe;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + stripe);
    if (lo == base && hi == base + stripe) {
      rec.stripes.insert_or_assign(si,
                                   blob::ChunkPayload::pattern(seed, stripe, base));
    } else {
      auto [sit, ins] = rec.stripes.try_emplace(si, blob::ChunkPayload::zeros(0));
      std::vector<std::byte> buf(hi - lo);
      for (Bytes b = lo; b < hi; ++b) buf[b - lo] = blob::pattern_byte(seed, b);
      sit->second.write(lo - base, buf);
    }
  }
  rec.info.size = std::max(rec.info.size, end);
  return Status::ok();
}

Status StripedFs::read(FileId file, Bytes offset,
                       std::span<std::byte> out) const {
  if (out.empty()) return Status::ok();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) return not_found("file " + std::to_string(file));
  const FileRecord& rec = it->second;
  if (offset + out.size() > rec.info.size) {
    return out_of_range("read past EOF");
  }
  const Bytes stripe = rec.info.stripe_size;
  const Bytes end = offset + out.size();
  for (std::uint64_t si = offset / stripe; si * stripe < end; ++si) {
    const Bytes base = si * stripe;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + stripe);
    auto sit = rec.stripes.find(si);
    auto dst = out.subspan(lo - offset, hi - lo);
    if (sit == rec.stripes.end()) {
      std::memset(dst.data(), 0, dst.size());  // hole
    } else {
      sit->second.read(lo - base, dst);
    }
  }
  return Status::ok();
}

Result<std::vector<StripePiece>> StripedFs::layout(FileId file, Bytes offset,
                                                   Bytes length) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  if (it == files_.end()) return not_found("file " + std::to_string(file));
  const Bytes stripe = it->second.info.stripe_size;
  std::vector<StripePiece> out;
  const Bytes end = offset + length;
  for (std::uint64_t si = offset / stripe; si * stripe < end; ++si) {
    const Bytes base = si * stripe;
    const Bytes lo = std::max(offset, base);
    const Bytes hi = std::min(end, base + stripe);
    out.push_back(StripePiece{si, server_of(si), lo, lo - base, hi - lo});
  }
  return out;
}

Bytes StripedFs::stored_bytes_on(ServerId s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Bytes n = 0;
  for (const auto& [id, rec] : files_) {
    for (const auto& [si, payload] : rec.stripes) {
      if (server_of(si) == s) n += payload.size();
    }
  }
  return n;
}

Bytes StripedFs::stored_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Bytes n = 0;
  for (const auto& [id, rec] : files_) {
    for (const auto& [si, payload] : rec.stripes) n += payload.size();
  }
  return n;
}

}  // namespace vmstorm::dfs
