// SimDfs: the striped file system deployed on the simulated cluster.
//
// Server i lives on network node server_nodes[i] with disk server_disks[i]
// (in the paper's setup, PVFS data servers run on the same compute nodes
// that host the VMs). Reads/writes are split into stripe pieces served in
// parallel by their servers, each piece paying request/response transfers
// and server disk time. PVFS does no client-side caching; writes go to the
// server disk write-back cache like any local write.
#pragma once

#include <memory>
#include <vector>

#include "dfs/striped_fs.hpp"
#include "net/network.hpp"
#include "sim/sync.hpp"
#include "storage/disk.hpp"

namespace vmstorm::dfs {

struct SimDfsConfig {
  Bytes request_bytes = 256;
  /// Fixed per-request server-side processing cost. PVFS is engineered for
  /// large transfers; small operations pay a millisecond-scale per-op cost
  /// (request decode, BMI/Trove dispatch, kernel round trips on 2011-era
  /// hardware). This serialized server resource is what saturates under a
  /// boot storm of small backing-file reads — the §5.2 effect that makes
  /// qcow2-over-PVFS degrade while chunk-prefetching clients stay flat.
  sim::SimTime server_request_cpu = sim::from_millis(1.5);
};

class SimDfs {
 public:
  SimDfs(sim::Engine& engine, net::Network& network, StripedFs& fs,
         std::vector<net::NodeId> server_nodes,
         std::vector<storage::Disk*> server_disks,
         SimDfsConfig cfg = SimDfsConfig{});

  StripedFs& fs() { return *fs_; }

  /// Reads [offset, offset+length) of `file`: parallel per-stripe-piece
  /// round trips. Holes cost a metadata lookup only.
  sim::Task<void> read(net::NodeId client, FileId file, Bytes offset,
                       Bytes length);

  /// Writes: parallel pushes, acknowledged when on the platter (PVFS has
  /// no server write-back cache — the §5.3 contrast with BlobSeer's
  /// asynchronous writes). Data content must be recorded separately via
  /// fs() by callers that care; cost and content are decoupled here.
  sim::Task<void> write(net::NodeId client, FileId file, Bytes offset,
                        Bytes length);

 private:
  sim::Task<void> read_piece(net::NodeId client, FileId file, StripePiece piece);
  sim::Task<void> write_piece(net::NodeId client, FileId file, StripePiece piece);
  std::uint64_t stripe_cache_key(FileId file, std::uint64_t stripe_index) const;

  sim::Engine* engine_;
  net::Network* network_;
  StripedFs* fs_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<storage::Disk*> server_disks_;
  /// One serialized CPU per server charging server_request_cpu per op.
  std::vector<std::unique_ptr<sim::FifoServer>> server_cpus_;
  SimDfsConfig cfg_;
};

}  // namespace vmstorm::dfs
