// Synthetic VM boot I/O trace (§2.3 access-pattern model).
//
// A booting guest issues "random small reads and writes" against the image:
// clustered sequential runs (loading binaries, libraries, config) over a
// hot subset of the image, interleaved with CPU bursts, plus scattered
// small writes (logs, contextualization) toward the end of boot. Only a
// small fraction of the image is ever touched — the property both lazy
// schemes exploit.
//
// The trace is deterministic for a (params, seed) pair, and the SAME trace
// is replayed by every instance booting the same image (they run the same
// OS); per-instance variation enters through CPU-burst jitter and start
// skew in vm::run_boot.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/time.hpp"

namespace vmstorm::vm {

struct BootTraceParams {
  Bytes image_size = 2_GiB;
  /// Unique bytes read during boot (paper Fig. 4(d): ~110 MiB of a 2 GiB
  /// image actually travels per instance).
  Bytes read_volume = 105_MiB;
  /// Bytes written during boot/contextualization (the Fig. 5 "diff" is
  /// ~15 MB per instance).
  Bytes write_volume = 15_MiB;
  Bytes min_request = 4_KiB;
  Bytes max_request = 32_KiB;
  /// Sequential-run length bounds (a run = one file/binary being loaded).
  Bytes min_run = 64_KiB;
  Bytes max_run = 512_KiB;
  /// Total CPU time interleaved between I/O (sets the no-contention boot
  /// floor; prepropagation's flat Fig. 4(a) line sits near this + local
  /// disk time).
  double cpu_seconds = 8.0;
  /// Reads cluster in the first fraction of the image (OS + apps live at
  /// the front of the disk). Small => dense coverage of touched chunks, so
  /// whole-chunk prefetch over-fetches little (the paper measures ours at
  /// only ~8 % more traffic than request-granularity qcow2).
  double hot_fraction = 0.08;
  /// Concurrent append streams for the write workload (log/config files
  /// being written sequentially).
  std::size_t write_streams = 12;
};

struct BootOp {
  enum class Kind { kRead, kWrite, kCpu };
  Kind kind = Kind::kCpu;
  Bytes offset = 0;
  Bytes length = 0;
  sim::SimTime cpu = 0;
};

class BootTrace {
 public:
  static BootTrace generate(const BootTraceParams& params, std::uint64_t seed);

  const std::vector<BootOp>& ops() const { return ops_; }
  const BootTraceParams& params() const { return params_; }

  Bytes total_read_requested() const { return total_read_; }
  Bytes unique_read_bytes() const { return unique_read_; }
  Bytes total_written() const { return total_write_; }
  double total_cpu_seconds() const { return total_cpu_; }
  std::size_t request_count() const { return requests_; }

 private:
  BootTraceParams params_;
  std::vector<BootOp> ops_;
  Bytes total_read_ = 0;
  Bytes unique_read_ = 0;
  Bytes total_write_ = 0;
  double total_cpu_ = 0;
  std::size_t requests_ = 0;
};

}  // namespace vmstorm::vm
