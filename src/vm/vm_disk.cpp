#include "vm/vm_disk.hpp"

#include <algorithm>

namespace vmstorm::vm {

sim::Task<void> LocalVmDisk::read(Bytes offset, Bytes length) {
  const Bytes end = offset + length;
  for (Bytes block = offset / gran_; block * gran_ < end; ++block) {
    const Bytes lo = std::max(offset, block * gran_);
    const Bytes hi = std::min(end, (block + 1) * gran_);
    co_await disk_->read(key(block), hi - lo);
  }
}

sim::Task<void> LocalVmDisk::write(Bytes offset, Bytes length) {
  const Bytes end = offset + length;
  for (Bytes block = offset / gran_; block * gran_ < end; ++block) {
    const Bytes lo = std::max(offset, block * gran_);
    const Bytes hi = std::min(end, (block + 1) * gran_);
    co_await disk_->write_async(hi - lo, key(block));
  }
}

}  // namespace vmstorm::vm
