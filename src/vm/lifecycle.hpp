// Boot-phase player: replays a BootTrace against a VmDisk with
// per-instance start skew and CPU jitter (§3.1.3: instances booting
// together skew by ~100 ms and drift apart as boot progresses).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "vm/boot_trace.hpp"
#include "vm/vm_disk.hpp"

namespace vmstorm::vm {

struct BootParams {
  /// Mean of the exponential start skew (hypervisor launch jitter).
  double start_skew_seconds = 0.1;
  /// Per-instance multiplicative CPU jitter half-width: each CPU burst is
  /// scaled by U(1-j, 1+j).
  double cpu_jitter = 0.2;
  /// Trace identity for the root span this boot emits (cat "vm"): lane is
  /// the hosting node, instance the logical VM index, kind "boot" or
  /// "resume". The span covers [started, finished] — skew excluded.
  std::uint32_t trace_lane = 0;
  std::uint64_t trace_instance = 0;
  const char* trace_kind = "boot";
};

struct BootResult {
  double started = 0;   // when the hypervisor launched (after skew)
  double finished = 0;  // /etc/rc.local reached
  double boot_seconds() const { return finished - started; }
};

/// Replays the boot trace. `rng` must be a per-instance fork so runs are
/// deterministic yet instances differ.
sim::Task<void> run_boot(sim::Engine& engine, VmDisk& disk,
                         const BootTrace& trace, Rng rng, BootParams params,
                         BootResult* result);

}  // namespace vmstorm::vm
