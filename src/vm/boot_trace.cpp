#include "vm/boot_trace.hpp"

#include <algorithm>

#include "common/interval.hpp"
#include "common/rng.hpp"

namespace vmstorm::vm {

BootTrace BootTrace::generate(const BootTraceParams& p, std::uint64_t seed) {
  BootTrace t;
  t.params_ = p;
  Rng rng(seed);
  RangeSet touched;

  // The hot region must comfortably contain the read volume (the guest
  // never reads the same data twice from the image — its own page cache
  // absorbs re-reads, §2.3).
  const Bytes hot_bytes = std::min<Bytes>(
      p.image_size,
      std::max<Bytes>(
          static_cast<Bytes>(static_cast<double>(p.image_size) * p.hot_fraction),
          p.read_volume + 4 * p.max_run));

  // Estimate request count to budget CPU bursts between requests.
  const double est_requests =
      static_cast<double>(p.read_volume) /
          (0.5 * static_cast<double>(p.min_request + p.max_request)) +
      static_cast<double>(p.write_volume) / static_cast<double>(18_KiB);
  const double cpu_mean = p.cpu_seconds / std::max(est_requests, 1.0);

  auto emit_cpu = [&] {
    const double dt = rng.exponential(cpu_mean);
    t.ops_.push_back(BootOp{BootOp::Kind::kCpu, 0, 0, sim::from_seconds(dt)});
    t.total_cpu_ += dt;
  };
  auto emit_read = [&](Bytes off, Bytes len) {
    t.ops_.push_back(BootOp{BootOp::Kind::kRead, off, len, 0});
    t.total_read_ += len;
    touched.insert({off, off + len});
    ++t.requests_;
    emit_cpu();
  };
  auto emit_write = [&](Bytes off, Bytes len) {
    t.ops_.push_back(BootOp{BootOp::Kind::kWrite, off, len, 0});
    t.total_write_ += len;
    ++t.requests_;
    emit_cpu();
  };

  // The boot sector / kernel load: a sequential read at the start.
  emit_read(0, std::min<Bytes>(64_KiB, p.max_request));

  // Carve the hot region into run-sized segments (one per file/binary the
  // boot loads), visit them in random order, and read each as a sequential
  // burst of small requests. This covers exactly the read budget with no
  // image-level re-reads while keeping the request stream "random small
  // reads" from the repository's perspective.
  std::vector<ByteRange> segments;
  for (Bytes pos = 64_KiB; pos + p.min_run <= hot_bytes;) {
    Bytes run_len = p.min_run + rng.uniform_u64(p.max_run - p.min_run + 1);
    run_len &= ~(4_KiB - 1);
    const Bytes end = std::min<Bytes>(pos + run_len, hot_bytes);
    segments.push_back({pos, end});
    pos = end;
  }
  // Fisher-Yates shuffle.
  for (std::size_t i = segments.size(); i > 1; --i) {
    std::swap(segments[i - 1], segments[rng.uniform_u64(i)]);
  }
  for (const ByteRange& seg : segments) {
    if (touched.total_bytes() >= p.read_volume) break;
    Bytes pos = seg.lo;
    while (pos < seg.hi) {
      const Bytes len = std::min<Bytes>(
          seg.hi - pos,
          p.min_request + rng.uniform_u64(p.max_request - p.min_request + 1));
      emit_read(pos, len);
      pos += len;
    }
  }
  t.unique_read_ = touched.total_bytes();

  // Contextualization writes: log/config/tmp files appended sequentially —
  // a handful of append streams in a writable band of the image. Appends
  // keep per-chunk content contiguous (our strategy 2 rarely needs gap
  // fills) and touch few distinct qcow2 clusters.
  const Bytes write_band_lo = hot_bytes;
  const Bytes write_band = std::max<Bytes>(p.image_size / 8, 16_MiB);
  const std::size_t streams = std::max<std::size_t>(p.write_streams, 1);
  std::vector<Bytes> stream_pos(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    stream_pos[s] =
        (write_band_lo + rng.uniform_u64(write_band)) & ~(4_KiB - 1);
  }
  Bytes written = 0;
  while (written < p.write_volume) {
    const std::size_t s = rng.uniform_u64(streams);
    const Bytes len = std::min<Bytes>(4_KiB + rng.uniform_u64(28_KiB),
                                      p.write_volume - written);
    if (stream_pos[s] + len > p.image_size) {
      stream_pos[s] = write_band_lo;
    }
    emit_write(stream_pos[s], len);
    stream_pos[s] += len;
    written += len;
  }
  return t;
}

}  // namespace vmstorm::vm
