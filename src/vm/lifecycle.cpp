#include "vm/lifecycle.hpp"

#include "sim/causal.hpp"

namespace vmstorm::vm {

sim::Task<void> run_boot(sim::Engine& engine, VmDisk& disk,
                         const BootTrace& trace, Rng rng, BootParams params,
                         BootResult* result) {
  co_await engine.sleep_seconds(rng.exponential(params.start_skew_seconds));
  result->started = engine.now_seconds();
  // Root span for this instance: the critical-path analyzer attributes
  // everything inside [started, finished] against it.
  obs::Tracer* tr = sim::live_tracer(engine);
  const std::uint64_t parent = engine.current_span();
  std::uint64_t span = 0;
  if (tr) {
    span = tr->new_span(parent);
    engine.set_current_span(span);
  }
  for (const BootOp& op : trace.ops()) {
    switch (op.kind) {
      case BootOp::Kind::kRead:
        co_await disk.read(op.offset, op.length);
        break;
      case BootOp::Kind::kWrite:
        co_await disk.write(op.offset, op.length);
        break;
      case BootOp::Kind::kCpu: {
        const double jitter =
            1.0 - params.cpu_jitter + 2.0 * params.cpu_jitter * rng.uniform_double();
        co_await engine.sleep(
            static_cast<sim::SimTime>(static_cast<double>(op.cpu) * jitter));
        break;
      }
    }
  }
  result->finished = engine.now_seconds();
  if (tr) {
    tr->complete_span(result->started, result->finished - result->started,
                      params.trace_lane, "vm", params.trace_kind, span, parent,
                      {obs::TraceArg::uint("instance", params.trace_instance)});
    engine.set_current_span(parent);
  }
}

}  // namespace vmstorm::vm
