#include "vm/lifecycle.hpp"

namespace vmstorm::vm {

sim::Task<void> run_boot(sim::Engine& engine, VmDisk& disk,
                         const BootTrace& trace, Rng rng, BootParams params,
                         BootResult* result) {
  co_await engine.sleep_seconds(rng.exponential(params.start_skew_seconds));
  result->started = engine.now_seconds();
  for (const BootOp& op : trace.ops()) {
    switch (op.kind) {
      case BootOp::Kind::kRead:
        co_await disk.read(op.offset, op.length);
        break;
      case BootOp::Kind::kWrite:
        co_await disk.write(op.offset, op.length);
        break;
      case BootOp::Kind::kCpu: {
        const double jitter =
            1.0 - params.cpu_jitter + 2.0 * params.cpu_jitter * rng.uniform_double();
        co_await engine.sleep(
            static_cast<sim::SimTime>(static_cast<double>(op.cpu) * jitter));
        break;
      }
    }
  }
  result->finished = engine.now_seconds();
}

}  // namespace vmstorm::vm
