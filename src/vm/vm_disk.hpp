// VmDisk: what the hypervisor hands the guest — adapters binding the boot
// player to each of the three §5.2 deployment strategies.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "mirror/sim_disk.hpp"
#include "qcow/sim_image.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"

namespace vmstorm::vm {

class VmDisk {
 public:
  virtual ~VmDisk() = default;
  virtual sim::Task<void> read(Bytes offset, Bytes length) = 0;
  virtual sim::Task<void> write(Bytes offset, Bytes length) = 0;
};

/// Our approach: the mirroring module over the BlobSeer-style store.
class MirrorVmDisk final : public VmDisk {
 public:
  explicit MirrorVmDisk(mirror::SimVirtualDisk& disk) : disk_(&disk) {}
  sim::Task<void> read(Bytes offset, Bytes length) override {
    return disk_->read(offset, length);
  }
  sim::Task<void> write(Bytes offset, Bytes length) override {
    return disk_->write(offset, length);
  }

 private:
  mirror::SimVirtualDisk* disk_;
};

/// qcow2-over-PVFS baseline.
class QcowVmDisk final : public VmDisk {
 public:
  explicit QcowVmDisk(qcow::SimImage& image) : image_(&image) {}
  sim::Task<void> read(Bytes offset, Bytes length) override {
    return image_->read(offset, length);
  }
  sim::Task<void> write(Bytes offset, Bytes length) override {
    return image_->write(offset, length);
  }

 private:
  qcow::SimImage* image_;
};

/// Pre-propagation baseline: the raw image fully present on the local
/// disk. First touch of a block pays platter time; re-reads hit the page
/// cache. Writes are write-back.
class LocalVmDisk final : public VmDisk {
 public:
  LocalVmDisk(storage::Disk& disk, std::uint64_t instance_salt,
              Bytes cache_granularity = 256_KiB)
      : disk_(&disk), salt_(instance_salt), gran_(cache_granularity) {}

  sim::Task<void> read(Bytes offset, Bytes length) override;
  sim::Task<void> write(Bytes offset, Bytes length) override;

 private:
  std::uint64_t key(Bytes block) const {
    return mix64((salt_ << 22) ^ 0x10ca1d15cull ^ block);
  }
  storage::Disk* disk_;
  std::uint64_t salt_;
  Bytes gran_;
};

}  // namespace vmstorm::vm
